//! Analytic (closed-form and quadrature) stale-read probability estimation.
//!
//! ## The model
//!
//! Writes arrive as a Poisson process with rate λw. A write started at `Xw`
//! becomes visible on the coordinator's replica after `T` (the paper's *time
//! to write the first replica*) — at which point, with a write consistency
//! level of ONE, it is acknowledged to the client — and reaches each of the
//! other `N−1` replicas after a propagation delay described by a
//! [`PropagationModel`] (the paper's total propagation time `Tp`). Reads pick
//! `R` distinct replicas uniformly at random and return the freshest version
//! among them.
//!
//! A read is **stale** when it returns a value older than the newest write
//! that was *acknowledged before the read started* — the same ground-truth
//! definition used by the cluster simulator's staleness oracle and by the
//! Monte-Carlo estimator, so estimated and measured rates are directly
//! comparable (as they are in the paper's Harmony evaluation).
//!
//! Under this definition the newest acknowledged write at a random read
//! arrival has age `T + E` where `E ~ Exp(λw)` (memorylessness of the write
//! process), and the read misses it iff
//!
//! * its replica selection avoids all `W` replicas that had acknowledged the
//!   write — probability `C(N−W, R) / C(N, R)` — **and**
//! * every selected replica is still waiting for the propagation, each with
//!   probability `q(T + E) = P(propagation delay > T + E)`.
//!
//! ```text
//! P(stale) = C(N−W,R)/C(N,R) · ∫₀^∞ λw e^(−λw·e) · q(T + e)^R de
//! ```
//!
//! which has closed forms for the deterministic and exponential propagation
//! models and is evaluated by Simpson quadrature otherwise.
//!
//! Two deliberate approximations, both inherited from Harmony's runtime
//! model and documented in DESIGN.md:
//!
//! * the write rate is the *aggregate* rate reported by the monitor (the
//!   paper's model does the same); per-key staleness therefore deviates for
//!   strongly skewed key popularity, which is why the experiments always
//!   report the oracle-measured rate alongside the estimate;
//! * for write levels above ONE the acknowledgment time is still
//!   approximated by `T`, which errs on the pessimistic (stale) side.
//!
//! When `R + W > N` (a strict quorum) the read set always intersects the
//! acknowledged write set and the estimate is exactly 0.

use crate::params::{PropagationModel, StalenessParams};

/// A stale-read estimate produced by any of the estimators.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StalenessEstimate {
    /// Probability that a given read is stale (fraction of stale reads).
    pub stale_read_probability: f64,
    /// Expected number of stale reads per second (`λr · P`).
    pub stale_reads_per_sec: f64,
}

/// Common interface of the stale-read estimators.
pub trait StaleReadEstimator {
    /// Estimate the stale-read probability for `params`.
    fn estimate(&self, params: &StalenessParams) -> StalenessEstimate;
}

/// The analytic estimator used by Harmony and Bismar at runtime.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticEstimator {
    /// Number of quadrature intervals for the general propagation model.
    pub quadrature_steps: usize,
}

/// Probability that a uniformly random `r`-subset of `n` replicas avoids all
/// `w` acknowledged replicas: `C(n−w, r) / C(n, r)`.
fn avoid_probability(n: u32, w: u32, r: u32) -> f64 {
    if r + w > n {
        return 0.0;
    }
    // C(n-w, r)/C(n, r) = Π_{i=0..r-1} (n - w - i) / (n - i)
    let mut p = 1.0;
    for i in 0..r {
        p *= (n - w - i) as f64 / (n - i) as f64;
    }
    p
}

impl AnalyticEstimator {
    /// Create the estimator with default quadrature resolution.
    pub fn new() -> Self {
        AnalyticEstimator {
            quadrature_steps: 2_048,
        }
    }

    /// Probability that a read arriving when the newest *acknowledged* write
    /// has age `t_ms` is stale.
    pub fn stale_probability_at(&self, params: &StalenessParams, t_ms: f64) -> f64 {
        if t_ms < params.first_write_ms {
            // The write is not acknowledged yet; the read is judged against
            // an older (already propagated) write.
            return 0.0;
        }
        let avoid = avoid_probability(params.n_replicas, params.write_level, params.read_level);
        let q = params.propagation.survival(t_ms);
        avoid * q.powi(params.read_level as i32)
    }

    fn integrate(&self, params: &StalenessParams) -> f64 {
        let lambda_w_per_ms = params.write_rate / 1_000.0;
        if lambda_w_per_ms <= 0.0 {
            // No writes: nothing can ever be stale.
            return 0.0;
        }
        let avoid = avoid_probability(params.n_replicas, params.write_level, params.read_level);
        if avoid <= 0.0 {
            return 0.0;
        }
        match &params.propagation {
            PropagationModel::Deterministic { total_ms } => {
                closed_form_deterministic(params, lambda_w_per_ms, *total_ms, avoid)
            }
            PropagationModel::Exponential { mean_ms } => {
                closed_form_exponential(params, lambda_w_per_ms, *mean_ms, avoid)
            }
            PropagationModel::General { .. } => self.quadrature(params, lambda_w_per_ms, avoid),
        }
    }

    /// Simpson's-rule integration of `λw e^{−λw e} · avoid · q(T + e)^R` over
    /// a horizon long enough to capture all the probability mass.
    fn quadrature(&self, params: &StalenessParams, lambda_w_per_ms: f64, avoid: f64) -> f64 {
        let horizon = horizon_ms(params, lambda_w_per_ms);
        let steps = self.quadrature_steps.max(16);
        let h = horizon / steps as f64;
        let r = params.read_level as i32;
        let t0 = params.first_write_ms;
        let f = |e: f64| {
            lambda_w_per_ms
                * (-lambda_w_per_ms * e).exp()
                * params.propagation.survival(t0 + e).powi(r)
        };
        let mut sum = f(0.0) + f(horizon);
        for i in 1..steps {
            let e = i as f64 * h;
            sum += if i % 2 == 1 { 4.0 } else { 2.0 } * f(e);
        }
        (avoid * sum * h / 3.0).clamp(0.0, 1.0)
    }
}

/// Integration horizon: several write inter-arrival times plus the slowest
/// plausible propagation delay.
fn horizon_ms(params: &StalenessParams, lambda_w_per_ms: f64) -> f64 {
    let interarrival = 1.0 / lambda_w_per_ms;
    let prop = params.propagation.mean_ms().max(params.first_write_ms);
    (8.0 * interarrival).max(10.0 * prop).max(1.0)
}

/// Closed form for the deterministic propagation model: the newest
/// acknowledged write is still propagating iff its age `T + E` is below `Tp`,
/// i.e. with probability `1 − e^{−λw (Tp − T)}`:
///
/// ```text
/// P = C(N−W,R)/C(N,R) · (1 − e^{−λw·(Tp − T)})        (Tp > T, else 0)
/// ```
fn closed_form_deterministic(params: &StalenessParams, lw: f64, total_ms: f64, avoid: f64) -> f64 {
    let window = total_ms - params.first_write_ms;
    if window <= 0.0 {
        return 0.0;
    }
    (avoid * (1.0 - (-lw * window).exp())).clamp(0.0, 1.0)
}

/// Closed form for exponential per-replica propagation delays with mean μ:
///
/// ```text
/// P = C(N−W,R)/C(N,R) · e^{−R·T/μ} · λw / (λw + R/μ)
/// ```
fn closed_form_exponential(params: &StalenessParams, lw: f64, mean_ms: f64, avoid: f64) -> f64 {
    if mean_ms <= 0.0 {
        return 0.0;
    }
    let r = params.read_level as f64;
    let mu_inv = 1.0 / mean_ms;
    let decay_at_ack = (-r * params.first_write_ms * mu_inv).exp();
    (avoid * decay_at_ack * lw / (lw + r * mu_inv)).clamp(0.0, 1.0)
}

impl StaleReadEstimator for AnalyticEstimator {
    fn estimate(&self, params: &StalenessParams) -> StalenessEstimate {
        params
            .validate()
            .unwrap_or_else(|e| panic!("invalid staleness parameters: {e}"));
        let p = if params.is_strict_quorum() {
            0.0
        } else {
            self.integrate(params)
        };
        StalenessEstimate {
            stale_read_probability: p,
            stale_reads_per_sec: p * params.read_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concord_sim::DelayDistribution;

    fn base(read_level: u32) -> StalenessParams {
        StalenessParams::basic(5, read_level, 1, 1000.0, 50.0, 0.5, 40.0)
    }

    #[test]
    fn avoid_probability_matches_combinatorics() {
        // C(4,1)/C(5,1) = 4/5, C(4,2)/C(5,2) = 6/10, C(3,2)/C(5,2) = 3/10.
        assert!((avoid_probability(5, 1, 1) - 0.8).abs() < 1e-12);
        assert!((avoid_probability(5, 1, 2) - 0.6).abs() < 1e-12);
        assert!((avoid_probability(5, 2, 2) - 0.3).abs() < 1e-12);
        assert_eq!(avoid_probability(5, 3, 3), 0.0, "strict quorum");
        assert_eq!(avoid_probability(5, 1, 5), 0.0, "read-all");
    }

    #[test]
    fn no_writes_means_no_staleness() {
        let mut p = base(1);
        p.write_rate = 0.0;
        let est = AnalyticEstimator::new().estimate(&p);
        assert_eq!(est.stale_read_probability, 0.0);
        assert_eq!(est.stale_reads_per_sec, 0.0);
    }

    #[test]
    fn strict_quorum_is_never_stale() {
        let mut p = base(3);
        p.write_level = 3; // R + W = 6 > 5
        let est = AnalyticEstimator::new().estimate(&p);
        assert_eq!(est.stale_read_probability, 0.0);

        // ALL reads are never stale regardless of the write level.
        let mut p = base(5);
        p.write_level = 1;
        assert_eq!(
            AnalyticEstimator::new().estimate(&p).stale_read_probability,
            0.0
        );
    }

    #[test]
    fn probability_decreases_with_read_level() {
        let est = AnalyticEstimator::new();
        let mut last = 1.0;
        for r in 1..=4u32 {
            let p = est.estimate(&base(r)).stale_read_probability;
            assert!(
                p <= last + 1e-12,
                "stale probability must not increase with the read level (R={r}: {p} > {last})"
            );
            last = p;
        }
        // And it should actually *matter*: ONE is clearly worse than R=4.
        let one = est.estimate(&base(1)).stale_read_probability;
        let four = est.estimate(&base(4)).stale_read_probability;
        assert!(one > 2.0 * four, "one={one} four={four}");
    }

    #[test]
    fn probability_increases_with_write_rate() {
        let est = AnalyticEstimator::new();
        let mut last = 0.0;
        for wr in [1.0, 10.0, 50.0, 200.0, 1000.0] {
            let mut p = base(1);
            p.write_rate = wr;
            let v = est.estimate(&p).stale_read_probability;
            assert!(v >= last - 1e-12, "must grow with write rate");
            last = v;
        }
        assert!(
            last > 0.5,
            "very heavy writes should make most weak reads stale (got {last})"
        );
    }

    #[test]
    fn probability_increases_with_propagation_time() {
        let est = AnalyticEstimator::new();
        let mut last = 0.0;
        for tp in [1.0, 10.0, 50.0, 200.0] {
            let p = StalenessParams::basic(5, 1, 1, 1000.0, 50.0, 0.5, tp);
            let v = est.estimate(&p).stale_read_probability;
            assert!(v >= last - 1e-12);
            last = v;
        }
    }

    #[test]
    fn deterministic_closed_form_matches_hand_computation() {
        // N=4, R=1, W=1, T=0, Tp=20ms, λw=25/s=0.025/ms.
        // P = C(3,1)/C(4,1) · (1 − e^{−0.025·20}) = 0.75 · (1 − e^{−0.5}).
        let p = StalenessParams::basic(4, 1, 1, 100.0, 25.0, 0.0, 20.0);
        let est = AnalyticEstimator::new().estimate(&p);
        let expected = 0.75 * (1.0 - (-0.5f64).exp());
        assert!(
            (est.stale_read_probability - expected).abs() < 1e-9,
            "got {} expected {expected}",
            est.stale_read_probability
        );
        assert!((est.stale_reads_per_sec - expected * 100.0).abs() < 1e-6);
    }

    #[test]
    fn first_write_time_shrinks_the_window() {
        // With T approaching Tp the staleness window vanishes.
        let est = AnalyticEstimator::new();
        let wide = StalenessParams::basic(5, 1, 1, 1000.0, 100.0, 0.0, 30.0);
        let narrow = StalenessParams::basic(5, 1, 1, 1000.0, 100.0, 25.0, 30.0);
        let closed = StalenessParams::basic(5, 1, 1, 1000.0, 100.0, 30.0, 30.0);
        let a = est.estimate(&wide).stale_read_probability;
        let b = est.estimate(&narrow).stale_read_probability;
        let c = est.estimate(&closed).stale_read_probability;
        assert!(a > b);
        assert!(b > 0.0);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn exponential_closed_form_matches_quadrature() {
        // The exponential model has both a closed form and a general-path
        // (quadrature) representation; they must agree.
        let closed = StalenessParams {
            propagation: PropagationModel::Exponential { mean_ms: 30.0 },
            ..base(2)
        };
        let general = StalenessParams {
            propagation: PropagationModel::General {
                delay: DelayDistribution::Exponential { mean_ms: 30.0 },
            },
            ..base(2)
        };
        let est = AnalyticEstimator::new();
        let a = est.estimate(&closed).stale_read_probability;
        let b = est.estimate(&general).stale_read_probability;
        assert!((a - b).abs() < 5e-3, "closed={a} quadrature={b}");
    }

    #[test]
    fn quadrature_handles_constant_delay_like_closed_form() {
        let closed = base(1);
        let general = StalenessParams {
            propagation: PropagationModel::General {
                delay: DelayDistribution::constant(40.0),
            },
            ..base(1)
        };
        let est = AnalyticEstimator::new();
        let a = est.estimate(&closed).stale_read_probability;
        let b = est.estimate(&general).stale_read_probability;
        assert!((a - b).abs() < 5e-3, "closed={a} quadrature={b}");
    }

    #[test]
    fn conditional_probability_shape() {
        let est = AnalyticEstimator::new();
        let p = base(2);
        // Before the write is acknowledged the read is judged against the
        // previous (propagated) write: not stale.
        assert_eq!(est.stale_probability_at(&p, 0.1), 0.0);
        // After the ack but before propagation completes, only selections
        // missing the acknowledged replica are stale: C(4,2)/C(5,2) = 0.6.
        let mid = est.stale_probability_at(&p, 10.0);
        assert!((mid - 0.6).abs() < 1e-12);
        // After Tp nothing is stale.
        assert_eq!(est.stale_probability_at(&p, 100.0), 0.0);
    }

    #[test]
    fn estimates_are_probabilities() {
        let est = AnalyticEstimator::new();
        for r in 1..=5 {
            for w in 1..=3 {
                for wr in [0.0, 5.0, 500.0, 50_000.0] {
                    for tp in [0.0, 5.0, 500.0] {
                        let p = StalenessParams::basic(5, r, w, 100.0, wr, 1.0, tp);
                        let v = est.estimate(&p).stale_read_probability;
                        assert!(
                            (0.0..=1.0).contains(&v),
                            "R={r} W={w} wr={wr} tp={tp} → {v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn higher_write_level_reduces_staleness() {
        let est = AnalyticEstimator::new();
        let w1 = est
            .estimate(&StalenessParams::basic(5, 2, 1, 1000.0, 200.0, 0.5, 40.0))
            .stale_read_probability;
        let w2 = est
            .estimate(&StalenessParams::basic(5, 2, 2, 1000.0, 200.0, 0.5, 40.0))
            .stale_read_probability;
        let w3 = est
            .estimate(&StalenessParams::basic(5, 2, 3, 1000.0, 200.0, 0.5, 40.0))
            .stale_read_probability;
        assert!(w1 > w2);
        assert!(w2 > w3);
        assert!(w3 > 0.0, "2+3 = 5 is not a strict quorum for RF 5");
    }

    #[test]
    #[should_panic(expected = "invalid staleness parameters")]
    fn invalid_params_panic() {
        let mut p = base(1);
        p.read_level = 0;
        AnalyticEstimator::new().estimate(&p);
    }
}
