//! # concord-staleness — probabilistic stale-read estimation
//!
//! This crate implements the estimation model at the heart of Harmony
//! (§III-A of the paper): *"Harmony embraces an estimation model based on
//! probabilistic computations"* of the situation shown in the paper's
//! Figure 1 — a read may be stale if it starts while the last write is still
//! propagating to the other replicas.
//!
//! Three estimators share the [`StaleReadEstimator`] interface:
//!
//! * [`AnalyticEstimator`] — closed forms for deterministic and exponential
//!   propagation models, adaptive quadrature for arbitrary delay
//!   distributions. This is what the Harmony controller evaluates at runtime.
//! * [`MonteCarloEstimator`] — a direct simulation of the Figure-1 situation,
//!   used to validate the analytic model (and parallelized with rayon).
//! * [`LevelSolver`] — the inverse problem: the minimal number of replicas a
//!   read must involve to keep the estimated stale-read rate under the
//!   application's tolerance.
//!
//! ```
//! use concord_staleness::{AnalyticEstimator, LevelSolver, StaleReadEstimator, StalenessParams};
//!
//! // 5 replicas, reads at 1000/s, writes at 100/s, ~40 ms propagation.
//! let params = StalenessParams::basic(5, 1, 1, 1000.0, 100.0, 0.5, 40.0);
//! let estimate = AnalyticEstimator::new().estimate(&params);
//! assert!(estimate.stale_read_probability > 0.0);
//!
//! // How many replicas must a read involve to keep staleness under 5%?
//! let solution = LevelSolver::new().solve(&params, 0.05);
//! assert!(solution.read_level >= 1);
//! ```

#![warn(missing_docs)]

pub mod analytic;
pub mod montecarlo;
pub mod params;
pub mod solver;

pub use analytic::{AnalyticEstimator, StaleReadEstimator, StalenessEstimate};
pub use montecarlo::MonteCarloEstimator;
pub use params::{PropagationModel, StalenessParams};
pub use solver::{LevelSolution, LevelSolver};
