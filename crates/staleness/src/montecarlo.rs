//! Monte-Carlo stale-read estimation.
//!
//! A direct simulation of the Figure-1 situation: writes arrive as a Poisson
//! process, every replica receives each write after its sampled propagation
//! delay, reads arrive as an independent Poisson process and contact `R`
//! random replicas. The estimator counts how many reads return a value older
//! than the last write *acknowledged* before the read started (the same
//! ground-truth definition the cluster oracle uses).
//!
//! The Monte-Carlo estimator is the reference the analytic estimator is
//! validated against in the property tests; it is also what the `fig1`
//! benchmark uses to reproduce the paper's Figure 1 situation.

use crate::analytic::{StaleReadEstimator, StalenessEstimate};
use crate::params::{PropagationModel, StalenessParams};
use concord_sim::SimRng;
use rayon::prelude::*;

/// Monte-Carlo estimator.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloEstimator {
    /// Number of simulated reads.
    pub reads: usize,
    /// RNG seed (deterministic results for a fixed seed).
    pub seed: u64,
    /// Number of independent chunks evaluated in parallel with rayon.
    pub chunks: usize,
}

impl Default for MonteCarloEstimator {
    fn default() -> Self {
        MonteCarloEstimator {
            reads: 200_000,
            seed: 0xC0FFEE,
            chunks: 8,
        }
    }
}

impl MonteCarloEstimator {
    /// Create an estimator simulating `reads` read operations.
    pub fn new(reads: usize, seed: u64) -> Self {
        MonteCarloEstimator {
            reads,
            seed,
            chunks: 8,
        }
    }

    /// Set the number of independent chunks the pool evaluates in parallel.
    ///
    /// Each chunk derives its RNG from `seed` and the chunk index, and the
    /// chunk results are reduced in index order, so the estimate depends on
    /// the chunk *count* but never on the thread count that ran them.
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        self.chunks = chunks.max(1);
        self
    }

    fn sample_propagation_ms(model: &PropagationModel, rng: &mut SimRng) -> f64 {
        match model {
            PropagationModel::Deterministic { total_ms } => *total_ms,
            PropagationModel::Exponential { mean_ms } => {
                if *mean_ms <= 0.0 {
                    0.0
                } else {
                    rng.exponential(1.0 / mean_ms)
                }
            }
            PropagationModel::General { delay } => delay.sample_ms(rng),
        }
    }

    /// Simulate one chunk of reads and return (stale, total).
    fn run_chunk(&self, params: &StalenessParams, chunk_reads: usize, seed: u64) -> (u64, u64) {
        let mut rng = SimRng::new(seed);
        let n = params.n_replicas as usize;
        let r = params.read_level as usize;
        let w = params.write_level as usize;
        let lambda_w_per_ms = params.write_rate / 1_000.0;
        let lambda_r_per_ms = params.read_rate.max(1e-9) / 1_000.0;

        // Event-free simulation: we walk a virtual timeline where writes and
        // reads interleave. Every write keeps, per replica, the absolute time
        // at which it becomes visible there, plus the time at which it was
        // acknowledged (when `W` replicas have it). A read is stale iff it
        // misses the newest write acknowledged before it started — the same
        // definition as the cluster simulator's staleness oracle.
        //
        // A bounded window of recent writes is kept so that overlapping
        // propagation windows (a newer write arriving before the previous one
        // is acknowledged) are handled correctly.
        const WRITE_WINDOW: usize = 64;
        struct WriteRecord {
            visible_at: Vec<f64>,
            ack_at: f64,
        }
        let mut recent: std::collections::VecDeque<WriteRecord> =
            std::collections::VecDeque::with_capacity(WRITE_WINDOW);
        let mut now_ms: f64;
        let mut stale = 0u64;
        let mut total = 0u64;

        if lambda_w_per_ms <= 0.0 {
            return (0, chunk_reads as u64);
        }

        let mut next_write = rng.exponential(lambda_w_per_ms);
        let mut next_read = rng.exponential(lambda_r_per_ms);
        while total < chunk_reads as u64 {
            if next_write <= next_read {
                now_ms = next_write;
                // Issue a write: replica 0 (the coordinator's local replica)
                // applies it after `first_write_ms`; the others after their
                // sampled propagation delay (never before the first replica).
                let mut visible: Vec<f64> = Vec::with_capacity(n);
                visible.push(now_ms + params.first_write_ms);
                for _ in 1..n {
                    let d = Self::sample_propagation_ms(&params.propagation, &mut rng)
                        .max(params.first_write_ms);
                    visible.push(now_ms + d);
                }
                // Acknowledged when `w` replicas have applied it.
                let mut sorted = visible.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let ack_at = sorted[w - 1];
                recent.push_back(WriteRecord {
                    visible_at: visible,
                    ack_at,
                });
                if recent.len() > WRITE_WINDOW {
                    recent.pop_front();
                }
                next_write = now_ms + rng.exponential(lambda_w_per_ms);
            } else {
                now_ms = next_read;
                next_read = now_ms + rng.exponential(lambda_r_per_ms);
                total += 1;
                // The newest write acknowledged before the read started.
                let Some(target) = recent.iter().rev().find(|wr| wr.ack_at <= now_ms) else {
                    continue;
                };
                // Contact R random replicas; the read is stale iff none of
                // them has that acknowledged write yet.
                let chosen = rng.sample_indices(n, r);
                let sees_fresh = chosen.iter().any(|&i| target.visible_at[i] <= now_ms);
                if !sees_fresh {
                    stale += 1;
                }
            }
        }
        (stale, total)
    }
}

impl StaleReadEstimator for MonteCarloEstimator {
    fn estimate(&self, params: &StalenessParams) -> StalenessEstimate {
        params
            .validate()
            .unwrap_or_else(|e| panic!("invalid staleness parameters: {e}"));
        let chunks = self.chunks.max(1);
        let per_chunk = (self.reads / chunks).max(1);
        let results: Vec<(u64, u64)> = (0..chunks)
            .into_par_iter()
            .map(|i| self.run_chunk(params, per_chunk, self.seed.wrapping_add(i as u64 * 7919)))
            .collect();
        let stale: u64 = results.iter().map(|(s, _)| s).sum();
        let total: u64 = results.iter().map(|(_, t)| t).sum();
        let p = if total == 0 {
            0.0
        } else {
            stale as f64 / total as f64
        };
        StalenessEstimate {
            stale_read_probability: p,
            stale_reads_per_sec: p * params.read_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::AnalyticEstimator;
    use concord_sim::DelayDistribution;

    fn mc() -> MonteCarloEstimator {
        MonteCarloEstimator::new(120_000, 42)
    }

    #[test]
    fn deterministic_results_for_fixed_seed() {
        let p = StalenessParams::basic(5, 1, 1, 1000.0, 50.0, 0.5, 40.0);
        let a = mc().estimate(&p);
        let b = mc().estimate(&p);
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // The chunks run on the real pool now; the estimate must stay
        // bit-identical whether one thread or many evaluate them, because
        // chunk RNGs are seeded by index and results reduce in index order.
        let p = StalenessParams::basic(5, 2, 1, 1500.0, 80.0, 0.5, 30.0);
        let est = MonteCarloEstimator::new(120_000, 42).with_chunks(8);
        let pool = |n: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("pool construction cannot fail")
        };
        let baseline = pool(1).install(|| est.estimate(&p));
        for threads in [2, 4, 8] {
            let sampled = pool(threads).install(|| est.estimate(&p));
            assert_eq!(sampled, baseline, "estimate drifted at {threads} threads");
        }
    }

    #[test]
    fn with_chunks_clamps_and_configures() {
        assert_eq!(MonteCarloEstimator::new(100, 1).with_chunks(0).chunks, 1);
        assert_eq!(MonteCarloEstimator::new(100, 1).with_chunks(16).chunks, 16);
    }

    #[test]
    fn agrees_with_analytic_closed_form_level_one() {
        let est_a = AnalyticEstimator::new();
        for (wr, tp) in [(20.0, 30.0), (100.0, 10.0), (5.0, 100.0)] {
            let p = StalenessParams::basic(5, 1, 1, 2000.0, wr, 0.0, tp);
            let analytic = est_a.estimate(&p).stale_read_probability;
            let sampled = mc().estimate(&p).stale_read_probability;
            assert!(
                (analytic - sampled).abs() < 0.03,
                "λw={wr} Tp={tp}: analytic={analytic} mc={sampled}"
            );
        }
    }

    #[test]
    fn agrees_with_analytic_for_higher_levels() {
        let est_a = AnalyticEstimator::new();
        for r in [2u32, 3] {
            let p = StalenessParams::basic(5, r, 1, 2000.0, 80.0, 0.0, 25.0);
            let analytic = est_a.estimate(&p).stale_read_probability;
            let sampled = mc().estimate(&p).stale_read_probability;
            assert!(
                (analytic - sampled).abs() < 0.03,
                "R={r}: analytic={analytic} mc={sampled}"
            );
        }
    }

    #[test]
    fn strict_quorum_observes_no_staleness() {
        let mut p = StalenessParams::basic(5, 3, 3, 1000.0, 200.0, 1.0, 50.0);
        let est = mc().estimate(&p);
        assert_eq!(est.stale_read_probability, 0.0);
        p.read_level = 5;
        p.write_level = 1;
        assert_eq!(mc().estimate(&p).stale_read_probability, 0.0);
    }

    #[test]
    fn exponential_model_matches_analytic() {
        let params = StalenessParams {
            propagation: PropagationModel::Exponential { mean_ms: 30.0 },
            ..StalenessParams::basic(5, 1, 1, 2000.0, 40.0, 0.0, 0.0)
        };
        let analytic = AnalyticEstimator::new()
            .estimate(&params)
            .stale_read_probability;
        let sampled = mc().estimate(&params).stale_read_probability;
        assert!(
            (analytic - sampled).abs() < 0.03,
            "analytic={analytic} mc={sampled}"
        );
    }

    #[test]
    fn general_distribution_is_supported() {
        let params = StalenessParams {
            propagation: PropagationModel::General {
                delay: DelayDistribution::wan(20.0, 10.0),
            },
            ..StalenessParams::basic(5, 2, 1, 2000.0, 40.0, 0.5, 0.0)
        };
        let est = mc().estimate(&params);
        assert!(est.stale_read_probability > 0.0);
        assert!(est.stale_read_probability < 1.0);
    }

    #[test]
    fn no_writes_no_staleness() {
        let p = StalenessParams::basic(5, 1, 1, 1000.0, 0.0, 0.5, 40.0);
        assert_eq!(mc().estimate(&p).stale_read_probability, 0.0);
    }
}
