//! Inputs to the stale-read probability model.
//!
//! The paper's Figure 1 defines the situation that leads to a stale read:
//! a read started at `Xr` may be stale if `Xr` falls inside the window
//! between the start of the last write `Xw` and the end of that write's
//! propagation to the other replicas `Xw + Tp`. The probability of that
//! situation — and of the read then actually hitting only not-yet-updated
//! replicas — is computed from:
//!
//! * the write arrival rate λw (writes/s, Poisson),
//! * the read arrival rate λr (reads/s, used for absolute stale counts),
//! * the replication factor `N`,
//! * the read consistency level `R` (replicas contacted per read) and write
//!   consistency level `W` (replica acks awaited per write),
//! * the time to apply the write on the first replica `T`, and
//! * the propagation behaviour of the remaining replicas (`Tp`).

use concord_sim::DelayDistribution;
use serde::{Deserialize, Serialize};

/// How long a write takes to reach each of the non-coordinator replicas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PropagationModel {
    /// Every remaining replica receives the write exactly `total_ms` after it
    /// started (the paper's single `Tp` value). This yields the simplest
    /// closed form and is what Harmony's runtime estimator uses.
    Deterministic {
        /// Total propagation time `Tp` in milliseconds.
        total_ms: f64,
    },
    /// Each remaining replica receives the write after an independent
    /// exponential delay with the given mean — a better fit when replicas
    /// are spread over heterogeneous WAN links.
    Exponential {
        /// Mean per-replica propagation delay in milliseconds.
        mean_ms: f64,
    },
    /// Each remaining replica receives the write after an independent delay
    /// drawn from an arbitrary distribution; evaluated by quadrature or
    /// Monte-Carlo.
    General {
        /// Per-replica propagation-delay distribution.
        delay: DelayDistribution,
    },
}

impl PropagationModel {
    /// Mean per-replica propagation delay, in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        match self {
            PropagationModel::Deterministic { total_ms } => *total_ms,
            PropagationModel::Exponential { mean_ms } => *mean_ms,
            PropagationModel::General { delay } => delay.mean_ms(),
        }
    }

    /// Survival function `P(delay > t_ms)` of the per-replica delay.
    pub fn survival(&self, t_ms: f64) -> f64 {
        if t_ms < 0.0 {
            return 1.0;
        }
        match self {
            PropagationModel::Deterministic { total_ms } => {
                if t_ms < *total_ms {
                    1.0
                } else {
                    0.0
                }
            }
            PropagationModel::Exponential { mean_ms } => {
                if *mean_ms <= 0.0 {
                    0.0
                } else {
                    (-t_ms / mean_ms).exp()
                }
            }
            PropagationModel::General { delay } => general_survival(delay, t_ms),
        }
    }
}

/// Survival function for the general case. Analytic where possible, otherwise
/// a conservative exponential approximation matched to the mean (the
/// Monte-Carlo estimator does not use this path — it samples directly).
fn general_survival(delay: &DelayDistribution, t_ms: f64) -> f64 {
    match delay {
        DelayDistribution::Constant { ms } => {
            if t_ms < *ms {
                1.0
            } else {
                0.0
            }
        }
        DelayDistribution::Uniform { lo_ms, hi_ms } => {
            if t_ms < *lo_ms {
                1.0
            } else if t_ms >= *hi_ms {
                0.0
            } else {
                (hi_ms - t_ms) / (hi_ms - lo_ms)
            }
        }
        DelayDistribution::Exponential { mean_ms } => {
            if *mean_ms <= 0.0 {
                0.0
            } else {
                (-t_ms / mean_ms).exp()
            }
        }
        DelayDistribution::ShiftedExponential {
            base_ms,
            tail_mean_ms,
        } => {
            if t_ms < *base_ms {
                1.0
            } else if *tail_mean_ms <= 0.0 {
                0.0
            } else {
                (-(t_ms - base_ms) / tail_mean_ms).exp()
            }
        }
        DelayDistribution::Empirical { samples_ms } => {
            if samples_ms.is_empty() {
                0.0
            } else {
                samples_ms.iter().filter(|&&s| s > t_ms).count() as f64 / samples_ms.len() as f64
            }
        }
        // Normal / log-normal: exponential approximation on the mean keeps
        // the estimator monotone and errs on the pessimistic (stale) side for
        // short windows.
        other => {
            let mean = other.mean_ms();
            if mean <= 0.0 {
                0.0
            } else {
                (-t_ms / mean).exp()
            }
        }
    }
}

/// Full parameter set for a stale-read estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StalenessParams {
    /// Replication factor `N`.
    pub n_replicas: u32,
    /// Read consistency level: number of replicas contacted per read.
    pub read_level: u32,
    /// Write consistency level: number of replica acks awaited per write.
    pub write_level: u32,
    /// Mean read arrival rate λr, reads per second.
    pub read_rate: f64,
    /// Mean write arrival rate λw, writes per second.
    pub write_rate: f64,
    /// Time to apply a write on the first replica, `T`, in milliseconds.
    pub first_write_ms: f64,
    /// Propagation behaviour towards the remaining replicas (`Tp`).
    pub propagation: PropagationModel,
}

impl StalenessParams {
    /// Convenience constructor with the deterministic propagation model.
    pub fn basic(
        n_replicas: u32,
        read_level: u32,
        write_level: u32,
        read_rate: f64,
        write_rate: f64,
        first_write_ms: f64,
        propagation_ms: f64,
    ) -> Self {
        StalenessParams {
            n_replicas,
            read_level,
            write_level,
            read_rate,
            write_rate,
            first_write_ms,
            propagation: PropagationModel::Deterministic {
                total_ms: propagation_ms,
            },
        }
    }

    /// Validate structural constraints.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_replicas == 0 {
            return Err("replication factor must be at least 1".into());
        }
        if self.read_level == 0 || self.read_level > self.n_replicas {
            return Err(format!(
                "read level must be in 1..={}, got {}",
                self.n_replicas, self.read_level
            ));
        }
        if self.write_level == 0 || self.write_level > self.n_replicas {
            return Err(format!(
                "write level must be in 1..={}, got {}",
                self.n_replicas, self.write_level
            ));
        }
        if self.read_rate < 0.0 || self.write_rate < 0.0 {
            return Err("rates must be non-negative".into());
        }
        if self.first_write_ms < 0.0 {
            return Err("first-write time must be non-negative".into());
        }
        Ok(())
    }

    /// True if the levels form a strict quorum (R + W > N), in which case
    /// every read overlaps the acknowledged write set and no acknowledged
    /// write can be missed.
    pub fn is_strict_quorum(&self) -> bool {
        self.read_level + self.write_level > self.n_replicas
    }

    /// Return a copy with a different read level (used by the level solver).
    pub fn with_read_level(&self, read_level: u32) -> Self {
        StalenessParams {
            read_level,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> StalenessParams {
        StalenessParams::basic(5, 1, 1, 1000.0, 100.0, 1.0, 40.0)
    }

    #[test]
    fn validation_accepts_sensible_params() {
        assert!(params().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_levels() {
        let mut p = params();
        p.read_level = 0;
        assert!(p.validate().is_err());
        let mut p = params();
        p.read_level = 6;
        assert!(p.validate().is_err());
        let mut p = params();
        p.write_level = 9;
        assert!(p.validate().is_err());
        let mut p = params();
        p.n_replicas = 0;
        assert!(p.validate().is_err());
        let mut p = params();
        p.write_rate = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn quorum_detection() {
        let mut p = params();
        assert!(!p.is_strict_quorum());
        p.read_level = 3;
        p.write_level = 3;
        assert!(p.is_strict_quorum(), "3+3 > 5");
        p.write_level = 2;
        assert!(!p.is_strict_quorum(), "3+2 = 5 is not strict");
    }

    #[test]
    fn deterministic_survival_is_a_step() {
        let m = PropagationModel::Deterministic { total_ms: 30.0 };
        assert_eq!(m.survival(0.0), 1.0);
        assert_eq!(m.survival(29.9), 1.0);
        assert_eq!(m.survival(30.0), 0.0);
        assert_eq!(m.survival(-5.0), 1.0);
        assert_eq!(m.mean_ms(), 30.0);
    }

    #[test]
    fn exponential_survival_decays() {
        let m = PropagationModel::Exponential { mean_ms: 10.0 };
        assert!((m.survival(0.0) - 1.0).abs() < 1e-12);
        assert!((m.survival(10.0) - (-1.0f64).exp()).abs() < 1e-12);
        assert!(m.survival(100.0) < 1e-4);
    }

    #[test]
    fn general_survival_variants() {
        let uniform = PropagationModel::General {
            delay: DelayDistribution::Uniform {
                lo_ms: 10.0,
                hi_ms: 20.0,
            },
        };
        assert_eq!(uniform.survival(5.0), 1.0);
        assert!((uniform.survival(15.0) - 0.5).abs() < 1e-12);
        assert_eq!(uniform.survival(25.0), 0.0);

        let shifted = PropagationModel::General {
            delay: DelayDistribution::wan(50.0, 10.0),
        };
        assert_eq!(shifted.survival(10.0), 1.0);
        assert!((shifted.survival(60.0) - (-1.0f64).exp()).abs() < 1e-12);

        let empirical = PropagationModel::General {
            delay: DelayDistribution::Empirical {
                samples_ms: vec![1.0, 2.0, 3.0, 4.0],
            },
        };
        assert!((empirical.survival(2.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn with_read_level_only_changes_level() {
        let p = params().with_read_level(3);
        assert_eq!(p.read_level, 3);
        assert_eq!(p.n_replicas, 5);
        assert_eq!(p.write_rate, 100.0);
    }

    #[test]
    fn serde_round_trip() {
        let p = params();
        let json = serde_json::to_string(&p).unwrap();
        let back: StalenessParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
