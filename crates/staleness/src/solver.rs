//! The inverse problem Harmony solves at every adaptation step: given the
//! application's tolerated stale-read rate, find the *smallest* number of
//! replicas a read must involve so that the estimated stale-read rate stays
//! below the tolerance (smaller read sets mean lower latency and higher
//! throughput, which is why Harmony always picks the minimum).

use crate::analytic::{AnalyticEstimator, StaleReadEstimator};
use crate::params::StalenessParams;

/// Result of a level computation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LevelSolution {
    /// The chosen number of replicas to involve in reads.
    pub read_level: u32,
    /// The estimated stale-read probability at that level.
    pub estimated_stale_rate: f64,
    /// The tolerance the solution was computed against.
    pub tolerated_stale_rate: f64,
}

/// Computes the minimal read consistency level meeting a staleness tolerance.
#[derive(Debug, Clone, Copy, Default)]
pub struct LevelSolver {
    estimator: AnalyticEstimator,
}

impl LevelSolver {
    /// Create a solver backed by the analytic estimator.
    pub fn new() -> Self {
        LevelSolver {
            estimator: AnalyticEstimator::new(),
        }
    }

    /// Estimate the stale-read probability for every possible read level
    /// `1..=N`, in order.
    pub fn estimate_all_levels(&self, params: &StalenessParams) -> Vec<f64> {
        (1..=params.n_replicas)
            .map(|r| {
                self.estimator
                    .estimate(&params.with_read_level(r))
                    .stale_read_probability
            })
            .collect()
    }

    /// The smallest read level whose estimated stale-read probability is at
    /// most `tolerated_stale_rate` (a fraction in `[0, 1]`).
    ///
    /// Falls back to the full replication factor if even `N − 1` replicas are
    /// not enough (reading all replicas can never return stale data under the
    /// model, so the solver always terminates with a valid level).
    pub fn solve(&self, params: &StalenessParams, tolerated_stale_rate: f64) -> LevelSolution {
        let tol = tolerated_stale_rate.clamp(0.0, 1.0);
        let mut chosen = params.n_replicas;
        let mut estimate_at_chosen = 0.0;
        for r in 1..=params.n_replicas {
            let est = self
                .estimator
                .estimate(&params.with_read_level(r))
                .stale_read_probability;
            if est <= tol {
                chosen = r;
                estimate_at_chosen = est;
                break;
            }
            if r == params.n_replicas {
                estimate_at_chosen = est;
            }
        }
        LevelSolution {
            read_level: chosen,
            estimated_stale_rate: estimate_at_chosen,
            tolerated_stale_rate: tol,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(write_rate: f64, propagation_ms: f64) -> StalenessParams {
        StalenessParams::basic(5, 1, 1, 1000.0, write_rate, 0.5, propagation_ms)
    }

    #[test]
    fn tolerant_applications_get_level_one() {
        let solver = LevelSolver::new();
        // Light writes, fast propagation: even ONE is fine for a 40% tolerance.
        let sol = solver.solve(&params(5.0, 5.0), 0.40);
        assert_eq!(sol.read_level, 1);
        assert!(sol.estimated_stale_rate <= 0.40);
    }

    #[test]
    fn strict_applications_need_more_replicas() {
        let solver = LevelSolver::new();
        // Heavy writes and slow propagation with a tight 1% tolerance.
        let sol = solver.solve(&params(500.0, 80.0), 0.01);
        assert!(sol.read_level > 1, "got level {}", sol.read_level);
        assert!(sol.estimated_stale_rate <= 0.01 || sol.read_level == 5);
    }

    #[test]
    fn zero_tolerance_returns_a_safe_level() {
        let solver = LevelSolver::new();
        let sol = solver.solve(&params(200.0, 50.0), 0.0);
        // Reading all replicas is always safe under the model.
        assert!(sol.read_level >= 1 && sol.read_level <= 5);
        assert_eq!(sol.estimated_stale_rate, 0.0);
    }

    #[test]
    fn chosen_level_is_minimal() {
        let solver = LevelSolver::new();
        let p = params(200.0, 50.0);
        let tol = 0.20;
        let sol = solver.solve(&p, tol);
        let all = solver.estimate_all_levels(&p);
        // Every level below the chosen one must violate the tolerance.
        for r in 1..sol.read_level {
            assert!(
                all[(r - 1) as usize] > tol,
                "level {r} would already satisfy the tolerance"
            );
        }
        assert!(all[(sol.read_level - 1) as usize] <= tol);
    }

    #[test]
    fn estimates_are_monotone_in_level() {
        let solver = LevelSolver::new();
        let all = solver.estimate_all_levels(&params(300.0, 60.0));
        for pair in all.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-12, "{all:?}");
        }
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn tolerance_is_clamped() {
        let solver = LevelSolver::new();
        let sol = solver.solve(&params(100.0, 20.0), 5.0);
        assert_eq!(sol.tolerated_stale_rate, 1.0);
        assert_eq!(sol.read_level, 1, "any level satisfies a 100% tolerance");
    }

    #[test]
    fn tighter_tolerance_never_lowers_the_level() {
        let solver = LevelSolver::new();
        let p = params(400.0, 60.0);
        let mut last_level = 0;
        for tol in [0.6, 0.4, 0.2, 0.1, 0.05, 0.01] {
            let sol = solver.solve(&p, tol);
            assert!(
                sol.read_level >= last_level,
                "tolerance {tol} gave level {} after {last_level}",
                sol.read_level
            );
            last_level = sol.read_level;
        }
    }
}
