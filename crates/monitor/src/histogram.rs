//! Latency histograms with logarithmic buckets.
//!
//! A compact, HdrHistogram-inspired structure: values are bucketed on a
//! log scale so that the histogram covers microseconds to minutes with
//! bounded relative error and O(1) insertion, which is what we need to report
//! the latency percentiles of millions of simulated operations without
//! keeping every sample.

use serde::{Deserialize, Serialize};

/// Number of linear sub-buckets per power-of-two bucket. 32 sub-buckets give
/// a worst-case relative quantile error of ~3%.
const SUB_BUCKETS: usize = 32;

/// A log-bucketed histogram of non-negative `u64` values (e.g. microseconds).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        // 64 powers of two × SUB_BUCKETS sub-buckets covers the full u64 range.
        LatencyHistogram {
            counts: vec![0; 64 * SUB_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as usize;
        let shift = msb - SUB_BUCKETS.trailing_zeros() as usize;
        let sub = (value >> shift) as usize - SUB_BUCKETS + SUB_BUCKETS;
        // `sub` is in [SUB_BUCKETS, 2*SUB_BUCKETS); place it in the block for
        // this power of two.
        (shift + 1) * SUB_BUCKETS + (sub - SUB_BUCKETS)
    }

    /// Representative (midpoint-ish) value for a bucket index: the lowest
    /// value mapping to that bucket.
    fn bucket_low(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let shift = index / SUB_BUCKETS - 1;
        let sub = index % SUB_BUCKETS;
        ((SUB_BUCKETS + sub) as u64) << shift
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_index(value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Arithmetic mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded value (`None` if empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` if empty).
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1) of the recorded values.
    /// Returns `None` if the histogram is empty. The relative error is
    /// bounded by the sub-bucket resolution (≈3%).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                // Clamp to observed extrema so tiny histograms stay exact-ish.
                return Some(Self::bucket_low(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_safe() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 4, 5] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(5));
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(5));
        assert!((h.mean() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
            let exact = (q * 100_000.0) as u64;
            let approx = h.quantile(q).unwrap();
            let rel = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(rel < 0.05, "q={q} exact={exact} approx={approx} rel={rel}");
        }
    }

    #[test]
    fn bucket_index_is_monotonic() {
        let mut last = 0usize;
        for v in (0..1_000_000u64).step_by(997) {
            let idx = LatencyHistogram::bucket_index(v);
            assert!(idx >= last, "bucket index must not decrease");
            last = idx;
        }
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(u64::MAX));
        assert!(h.quantile(0.99).is_some());
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in 0..1_000u64 {
            if v % 2 == 0 {
                a.record(v * 7);
            } else {
                b.record(v * 7);
            }
            all.record(v * 7);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.quantile(0.5), all.quantile(0.5));
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
    }

    #[test]
    fn clear_resets_everything() {
        let mut h = LatencyHistogram::new();
        h.record(123);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
    }
}
