//! Sliding-window event-rate estimation.
//!
//! Harmony's monitoring module estimates the read and write arrival rates
//! (λr, λw) over a recent window of time; those rates feed the stale-read
//! probability model. [`SlidingWindowRate`] keeps the timestamps of events
//! inside a fixed-length window and reports the observed rate.

use concord_sim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Counts events over a sliding window of simulated time and reports the
/// event rate in events per second.
#[derive(Debug, Clone)]
pub struct SlidingWindowRate {
    window: SimDuration,
    events: VecDeque<SimTime>,
    /// Total events ever recorded (not just those still in the window).
    total: u64,
}

impl SlidingWindowRate {
    /// Create a rate estimator with the given window length.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        SlidingWindowRate {
            window,
            events: VecDeque::new(),
            total: 0,
        }
    }

    /// The configured window length.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Record one event at time `at`.
    ///
    /// Events are normally recorded in non-decreasing time order (the
    /// natural order of a simulation run); slightly out-of-order events —
    /// e.g. completions reported by their *issue* time — are clamped to the
    /// newest recorded timestamp so the window stays consistent.
    pub fn record(&mut self, at: SimTime) {
        let at = match self.events.back() {
            Some(&last) if at < last => last,
            _ => at,
        };
        self.events.push_back(at);
        self.total += 1;
        self.evict(at);
    }

    /// Drop events that have fallen out of the window as of `now`.
    fn evict(&mut self, now: SimTime) {
        let cutoff = now - self.window; // saturating at 0
        while let Some(&front) = self.events.front() {
            if front < cutoff {
                self.events.pop_front();
            } else {
                break;
            }
        }
    }

    /// Number of events currently inside the window (as of the last event or
    /// explicit [`rate_at`](Self::rate_at) call).
    pub fn count_in_window(&self) -> usize {
        self.events.len()
    }

    /// Total number of events ever recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The event rate (events / second) observed over the window ending at
    /// `now`. Events newer than `now` are not expected but tolerated.
    pub fn rate_at(&mut self, now: SimTime) -> f64 {
        self.evict(now);
        self.events.len() as f64 / self.window.as_secs_f64()
    }

    /// Clear all recorded events (the total counter is preserved).
    pub fn reset_window(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_counts_only_recent_events() {
        let mut w = SlidingWindowRate::new(SimDuration::from_secs(10));
        // 100 events over the first 10 seconds → 10 events/s.
        for i in 0..100 {
            w.record(SimTime::from_millis(i * 100));
        }
        let r = w.rate_at(SimTime::from_secs(10));
        assert!((r - 10.0).abs() < 0.5, "rate={r}");
        assert_eq!(w.total(), 100);

        // 20 seconds later with no events the rate drops to zero.
        let r = w.rate_at(SimTime::from_secs(30));
        assert_eq!(r, 0.0);
        assert_eq!(w.count_in_window(), 0);
        assert_eq!(w.total(), 100, "total is preserved");
    }

    #[test]
    fn eviction_is_incremental() {
        let mut w = SlidingWindowRate::new(SimDuration::from_secs(1));
        for s in 0..5u64 {
            for i in 0..10 {
                w.record(SimTime::from_millis(s * 1000 + i * 100));
            }
        }
        // Only the last second's worth of events remains.
        assert!(w.count_in_window() <= 11);
        let r = w.rate_at(SimTime::from_secs(5));
        assert!((r - 10.0).abs() <= 1.0, "rate={r}");
    }

    #[test]
    fn rate_before_any_events_is_zero() {
        let mut w = SlidingWindowRate::new(SimDuration::from_secs(5));
        assert_eq!(w.rate_at(SimTime::from_secs(100)), 0.0);
    }

    #[test]
    fn reset_clears_window_only() {
        let mut w = SlidingWindowRate::new(SimDuration::from_secs(5));
        w.record(SimTime::from_secs(1));
        w.reset_window();
        assert_eq!(w.count_in_window(), 0);
        assert_eq!(w.total(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        SlidingWindowRate::new(SimDuration::ZERO);
    }
}
