//! # concord-monitor — runtime monitoring of the storage system
//!
//! Harmony (§III-A of the paper) consists of two modules: a *monitoring
//! module* that collects read rates, write rates and network latencies from
//! the storage system, and an *adaptive consistency module* that turns those
//! measurements into a consistency level. This crate implements the
//! monitoring half:
//!
//! * [`SlidingWindowRate`] — read/write arrival-rate estimation (λr, λw);
//! * [`Ewma`] / [`TimeDecayEwma`] — smoothing of propagation delays and
//!   latencies;
//! * [`LatencyHistogram`] — log-bucketed latency percentiles;
//! * [`AccessMonitor`] / [`MonitorSnapshot`] — the aggregate monitor fed by
//!   the cluster and consumed by the adaptive policies in `concord-core`.

#![warn(missing_docs)]

pub mod ewma;
pub mod histogram;
pub mod registry;
pub mod window;

pub use ewma::{Ewma, TimeDecayEwma};
pub use histogram::LatencyHistogram;
pub use registry::{AccessMonitor, MonitorConfig, MonitorSnapshot};
pub use window::SlidingWindowRate;
