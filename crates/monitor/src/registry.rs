//! The access monitor: Harmony's "monitoring module".
//!
//! The paper (§III-A) describes a monitoring module that *"collects relevant
//! metrics about data access in the storage system: read rates and write
//! rates, as well as network latencies"*, and feeds them to the adaptive
//! consistency module. [`AccessMonitor`] is that component: the cluster (or
//! any client layer) reports every read, write, completed-operation latency
//! and measured replica-propagation delay; the adaptive controllers consume
//! periodic [`MonitorSnapshot`]s.

use crate::ewma::Ewma;
use crate::histogram::LatencyHistogram;
use crate::window::SlidingWindowRate;
use concord_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration of the access monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Length of the sliding window used for read/write rate estimation.
    pub rate_window: SimDuration,
    /// EWMA smoothing factor for propagation-delay measurements.
    pub propagation_alpha: f64,
    /// EWMA smoothing factor for operation latency.
    pub latency_alpha: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            rate_window: SimDuration::from_secs(10),
            propagation_alpha: 0.2,
            latency_alpha: 0.2,
        }
    }
}

/// A point-in-time view of everything the monitor knows, consumed by the
/// adaptive consistency policies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorSnapshot {
    /// When the snapshot was taken.
    pub at: SimTime,
    /// Observed read arrival rate λr (reads / second) over the window.
    pub read_rate: f64,
    /// Observed write arrival rate λw (writes / second) over the window.
    pub write_rate: f64,
    /// Smoothed time to fully propagate a write to all replicas, in ms
    /// (the paper's `Tp`).
    pub propagation_time_ms: f64,
    /// Smoothed time to apply a write on the first replica, in ms
    /// (the paper's `T`).
    pub first_write_time_ms: f64,
    /// Smoothed client-observed operation latency, in ms.
    pub smoothed_latency_ms: f64,
    /// Median read latency over the whole run so far, in ms.
    pub read_latency_p50_ms: f64,
    /// 99th-percentile read latency over the whole run so far, in ms.
    pub read_latency_p99_ms: f64,
    /// Total reads observed since the monitor started.
    pub total_reads: u64,
    /// Total writes observed since the monitor started.
    pub total_writes: u64,
}

impl MonitorSnapshot {
    /// Ratio of reads to writes in the observed window (∞-safe: returns
    /// `f64::INFINITY` when no writes were observed).
    pub fn read_write_ratio(&self) -> f64 {
        if self.write_rate <= 0.0 {
            f64::INFINITY
        } else {
            self.read_rate / self.write_rate
        }
    }
}

/// Collects data-access metrics from the running storage system.
#[derive(Debug, Clone)]
pub struct AccessMonitor {
    config: MonitorConfig,
    reads: SlidingWindowRate,
    writes: SlidingWindowRate,
    propagation: Ewma,
    first_write: Ewma,
    latency: Ewma,
    read_latencies: LatencyHistogram,
    write_latencies: LatencyHistogram,
}

impl Default for AccessMonitor {
    fn default() -> Self {
        Self::new(MonitorConfig::default())
    }
}

impl AccessMonitor {
    /// Create a monitor with the given configuration.
    pub fn new(config: MonitorConfig) -> Self {
        AccessMonitor {
            config,
            reads: SlidingWindowRate::new(config.rate_window),
            writes: SlidingWindowRate::new(config.rate_window),
            propagation: Ewma::new(config.propagation_alpha),
            first_write: Ewma::new(config.propagation_alpha),
            latency: Ewma::new(config.latency_alpha),
            read_latencies: LatencyHistogram::new(),
            write_latencies: LatencyHistogram::new(),
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> MonitorConfig {
        self.config
    }

    /// Record a read issued at `at` that completed after `latency`.
    pub fn record_read(&mut self, at: SimTime, latency: SimDuration) {
        self.reads.record(at);
        self.read_latencies.record(latency.as_micros());
        self.latency.observe(latency.as_millis_f64());
    }

    /// Record a write issued at `at` that was acknowledged after `latency`
    /// (time to satisfy the write consistency level — the paper's `T`).
    pub fn record_write(&mut self, at: SimTime, latency: SimDuration) {
        self.writes.record(at);
        self.write_latencies.record(latency.as_micros());
        self.latency.observe(latency.as_millis_f64());
        self.first_write.observe(latency.as_millis_f64());
    }

    /// Record the measured time for a write to reach *all* replicas
    /// (the paper's total propagation time `Tp`).
    pub fn record_propagation(&mut self, total_propagation: SimDuration) {
        self.propagation.observe(total_propagation.as_millis_f64());
    }

    /// Number of reads observed so far.
    pub fn total_reads(&self) -> u64 {
        self.reads.total()
    }

    /// Number of writes observed so far.
    pub fn total_writes(&self) -> u64 {
        self.writes.total()
    }

    /// Access to the full read-latency histogram.
    pub fn read_latency_histogram(&self) -> &LatencyHistogram {
        &self.read_latencies
    }

    /// Access to the full write-latency histogram.
    pub fn write_latency_histogram(&self) -> &LatencyHistogram {
        &self.write_latencies
    }

    /// Produce a snapshot of the current state, evaluated at time `now`.
    pub fn snapshot(&mut self, now: SimTime) -> MonitorSnapshot {
        let to_ms = |us: Option<u64>| us.map(|v| v as f64 / 1e3).unwrap_or(0.0);
        MonitorSnapshot {
            at: now,
            read_rate: self.reads.rate_at(now),
            write_rate: self.writes.rate_at(now),
            propagation_time_ms: self.propagation.value_or(0.0),
            first_write_time_ms: self.first_write.value_or(0.0),
            smoothed_latency_ms: self.latency.value_or(0.0),
            read_latency_p50_ms: to_ms(self.read_latencies.quantile(0.5)),
            read_latency_p99_ms: to_ms(self.read_latencies.quantile(0.99)),
            total_reads: self.reads.total(),
            total_writes: self.writes.total(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_steady_traffic(
        m: &mut AccessMonitor,
        seconds: u64,
        reads_per_s: u64,
        writes_per_s: u64,
    ) {
        for s in 0..seconds {
            for i in 0..reads_per_s {
                let at = SimTime::from_micros(s * 1_000_000 + i * (1_000_000 / reads_per_s));
                m.record_read(at, SimDuration::from_millis(2));
            }
            for i in 0..writes_per_s {
                let at = SimTime::from_micros(s * 1_000_000 + i * (1_000_000 / writes_per_s));
                m.record_write(at, SimDuration::from_millis(4));
            }
        }
    }

    #[test]
    fn rates_reflect_traffic() {
        let mut m = AccessMonitor::default();
        feed_steady_traffic(&mut m, 30, 100, 20);
        let snap = m.snapshot(SimTime::from_secs(30));
        assert!(
            (snap.read_rate - 100.0).abs() < 10.0,
            "read rate {}",
            snap.read_rate
        );
        assert!(
            (snap.write_rate - 20.0).abs() < 3.0,
            "write rate {}",
            snap.write_rate
        );
        assert!((snap.read_write_ratio() - 5.0).abs() < 1.0);
        assert_eq!(snap.total_reads, 3000);
        assert_eq!(snap.total_writes, 600);
    }

    #[test]
    fn propagation_time_is_smoothed() {
        let mut m = AccessMonitor::default();
        for _ in 0..100 {
            m.record_propagation(SimDuration::from_millis(50));
        }
        m.record_propagation(SimDuration::from_millis(500)); // outlier
        let snap = m.snapshot(SimTime::from_secs(1));
        assert!(snap.propagation_time_ms > 49.0);
        assert!(snap.propagation_time_ms < 200.0, "outlier must be damped");
    }

    #[test]
    fn latency_percentiles_reported_in_ms() {
        let mut m = AccessMonitor::default();
        for i in 1..=1000u64 {
            m.record_read(SimTime::from_millis(i), SimDuration::from_micros(i * 10));
        }
        let snap = m.snapshot(SimTime::from_secs(1));
        // p50 of 10µs..10ms uniform = ~5ms, p99 ≈ 9.9ms.
        assert!(
            (snap.read_latency_p50_ms - 5.0).abs() < 0.5,
            "{}",
            snap.read_latency_p50_ms
        );
        assert!(snap.read_latency_p99_ms > 9.0);
        assert!(m.read_latency_histogram().count() == 1000);
        assert!(m.write_latency_histogram().is_empty());
    }

    #[test]
    fn empty_monitor_snapshot_is_zeroed() {
        let mut m = AccessMonitor::default();
        let snap = m.snapshot(SimTime::from_secs(5));
        assert_eq!(snap.read_rate, 0.0);
        assert_eq!(snap.write_rate, 0.0);
        assert_eq!(snap.propagation_time_ms, 0.0);
        assert_eq!(snap.read_write_ratio(), f64::INFINITY);
    }

    #[test]
    fn rates_decay_after_traffic_stops() {
        let mut m = AccessMonitor::default();
        feed_steady_traffic(&mut m, 10, 50, 50);
        let busy = m.snapshot(SimTime::from_secs(10));
        let idle = m.snapshot(SimTime::from_secs(60));
        assert!(busy.read_rate > 20.0);
        assert_eq!(idle.read_rate, 0.0);
        assert_eq!(idle.total_reads, busy.total_reads, "totals persist");
    }

    #[test]
    fn snapshot_serializes() {
        let mut m = AccessMonitor::default();
        m.record_read(SimTime::from_secs(1), SimDuration::from_millis(1));
        let snap = m.snapshot(SimTime::from_secs(2));
        let json = serde_json::to_string(&snap).unwrap();
        let back: MonitorSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }
}
