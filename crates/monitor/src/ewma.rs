//! Exponentially-weighted moving averages.
//!
//! Network propagation latencies fluctuate; Harmony smooths the measured
//! propagation time with an EWMA before feeding it to the stale-read model so
//! that single outliers do not flip the consistency level back and forth.

use serde::{Deserialize, Serialize};

/// A classic exponentially-weighted moving average:
/// `value ← α·sample + (1-α)·value`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create an EWMA with smoothing factor `alpha` in (0, 1].
    /// Larger α reacts faster; smaller α smooths more.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma { alpha, value: None }
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Feed one observation.
    pub fn observe(&mut self, sample: f64) {
        self.value = Some(match self.value {
            None => sample,
            Some(v) => self.alpha * sample + (1.0 - self.alpha) * v,
        });
    }

    /// The current smoothed value (`None` before any observation).
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// The current smoothed value, or `default` before any observation.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Forget all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// An EWMA whose effective α adapts to irregular sampling intervals:
/// `α_eff = 1 − exp(−Δt / τ)` where τ is the configured time constant.
/// This gives time-constant smoothing regardless of how often samples arrive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeDecayEwma {
    /// Time constant in seconds.
    tau_s: f64,
    value: Option<f64>,
    last_t_s: f64,
}

impl TimeDecayEwma {
    /// Create a time-decaying EWMA with time constant `tau_s` seconds.
    pub fn new(tau_s: f64) -> Self {
        assert!(tau_s > 0.0);
        TimeDecayEwma {
            tau_s,
            value: None,
            last_t_s: 0.0,
        }
    }

    /// Feed one observation taken at time `t_s` (seconds).
    pub fn observe_at(&mut self, t_s: f64, sample: f64) {
        match self.value {
            None => {
                self.value = Some(sample);
            }
            Some(v) => {
                let dt = (t_s - self.last_t_s).max(0.0);
                let alpha = 1.0 - (-dt / self.tau_s).exp();
                self.value = Some(alpha * sample + (1.0 - alpha) * v);
            }
        }
        self.last_t_s = t_s;
    }

    /// The current smoothed value.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = Ewma::new(0.2);
        assert_eq!(e.value(), None);
        assert_eq!(e.value_or(7.0), 7.0);
        e.observe(10.0);
        assert_eq!(e.value(), Some(10.0));
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.3);
        for _ in 0..200 {
            e.observe(42.0);
        }
        assert!((e.value().unwrap() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn smooths_spikes() {
        let mut e = Ewma::new(0.1);
        for _ in 0..50 {
            e.observe(10.0);
        }
        e.observe(1000.0); // one outlier
        let v = e.value().unwrap();
        assert!(v < 120.0, "one spike must not dominate: {v}");
        assert!(v > 10.0);
    }

    #[test]
    fn higher_alpha_reacts_faster() {
        let mut slow = Ewma::new(0.05);
        let mut fast = Ewma::new(0.5);
        slow.observe(0.0);
        fast.observe(0.0);
        for _ in 0..5 {
            slow.observe(100.0);
            fast.observe(100.0);
        }
        assert!(fast.value().unwrap() > slow.value().unwrap());
    }

    #[test]
    fn reset_forgets() {
        let mut e = Ewma::new(0.2);
        e.observe(1.0);
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        Ewma::new(0.0);
    }

    #[test]
    fn time_decay_depends_on_gap() {
        let mut e = TimeDecayEwma::new(10.0);
        e.observe_at(0.0, 0.0);
        // A sample after a very short gap barely moves the value…
        let mut quick = e;
        quick.observe_at(0.1, 100.0);
        // …while the same sample after a long gap almost replaces it.
        let mut slow = e;
        slow.observe_at(100.0, 100.0);
        assert!(quick.value().unwrap() < 5.0);
        assert!(slow.value().unwrap() > 95.0);
    }
}
