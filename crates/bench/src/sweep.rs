//! The sweep engine: one declarative harness for every `exp_*` binary.
//!
//! The paper's evaluation is a grid — workload mixes × consistency policies ×
//! platforms × seeds — and before this module existed each experiment binary
//! hand-rolled its own slice of that grid (argument parsing, platform
//! construction, run loop, table rendering). The shared pieces now live here:
//!
//! * [`Harness`] — common CLI surface (`--scale`, `--cluster-scale`,
//!   `--platform`, `--seeds`, `--seed-base`, `--threads`, plus the
//!   `--arrival` / `--workload` / `--partitioner` / `--repair` /
//!   `--shards` / `--hedge` / `--selection` / `--backoff` overrides)
//!   and platform lookup; `--threads` configures the global rayon pool for
//!   the process.
//! * [`Sweep`] — a declarative `(policy × seed)` grid over one
//!   [`Experiment`]. [`Sweep::run`] executes every point **in parallel**
//!   (each point owns its `Cluster`/`AdaptiveRuntime`, so points are
//!   embarrassingly parallel) and returns [`SweepResults`] in grid order.
//! * [`SweepResults::summaries`] — deterministic ordered reduction across
//!   seeds: mean / sample standard deviation / 95% confidence half-width per
//!   policy, folded in seed order so output is bit-identical for any thread
//!   count.
//! * [`run_grid`] / [`run_timed_grid`] — the same parallel-ordered execution
//!   for experiment grids that are not policy sweeps (the FIG1 estimator
//!   grid, wall-clock measurement grids).
//!
//! ## Determinism contract
//!
//! A sweep point is a pure function of `(platform, workload, policy, seed)`:
//! the vendored rayon pool hands points to worker threads dynamically but
//! recombines results **in input order**, and nothing inside a point reads
//! shared mutable state. Per-seed [`RunReport`]s are therefore byte-identical
//! at 1, 2 or N threads (pinned by `crates/bench/tests/parallel_sweep.rs`).

use concord::prelude::*;
use concord::PolicySpec;
use concord_core::RunReport;
use rayon::prelude::*;

use crate::Scale;

/// Parsed common command-line surface of the experiment binaries.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Raw process arguments (for binary-specific flags).
    pub args: Vec<String>,
    /// Workload/cluster scale (`--scale`, `--cluster-scale`).
    pub scale: Scale,
    /// Platform name (`--platform`, default `g5k`).
    pub platform: String,
    /// Number of seeds a multi-seed sweep should run (`--seeds`, default 1).
    pub seed_count: u64,
    /// Explicit first seed (`--seed-base`), overriding the binary's default.
    pub seed_base: Option<u64>,
    /// Arrival-mode override (`--arrival closed:<clients>`,
    /// `--arrival poisson:<ops/s>`, `--arrival uniform:<ops/s>`); `None`
    /// keeps the binary's default (usually the paper's closed loop).
    pub arrival: Option<ArrivalProcess>,
    /// Workload-mix override (`--workload a`–`f`): replaces the operation
    /// mix, request distribution and scan bounds with the named YCSB
    /// preset, keeping the binary's record/operation counts and record
    /// sizing. `None` keeps the binary's default mix.
    pub workload: Option<String>,
    /// Partitioner override (`--partitioner hash|ordered`): how keys map to
    /// owning nodes — the consistent-hash token ring (default) or
    /// contiguous key-range ownership, under which range scans are
    /// coverage-faithful. Applied to every platform the harness constructs
    /// ([`Harness::cost_platform`], [`Harness::harmony_platform`],
    /// [`Harness::apply_partitioner`]), so `(partitioner × policy × seed)`
    /// grids run through the same `Sweep` machinery. `None` keeps the
    /// platform's default (hash).
    pub partitioner: Option<Partitioner>,
    /// Repair-plane override (`--repair off|hints|anti-entropy|full`):
    /// which background repair subsystems the cluster runs — hinted
    /// handoff, anti-entropy sweeps over page summaries, or both (which
    /// also enables recovery migration after crash/recover faults).
    /// Applied to every platform the harness constructs, like
    /// `--partitioner`. `None` keeps the platform's default (off).
    pub repair: Option<RepairMode>,
    /// Event-queue shard count override (`--shards N`): runs every cluster
    /// on the multi-core conservative-PDES engine with `N` per-node-group
    /// lanes, window batches dispatched on the worker pool. Each shard
    /// count samples its own deterministic universe, byte-identical at any
    /// thread count — within a shard count this is a pure performance axis.
    /// Applied to every platform the harness constructs, like
    /// `--partitioner`. `None` keeps the platform's default (unsharded).
    pub shards: Option<u32>,
    /// Hedged-read override (`--hedge <ms>`): after this delay a point
    /// read's coordinator issues one speculative duplicate to the best
    /// unused replica; first response wins. Fractional milliseconds are
    /// accepted (`--hedge 0.5` = 500 µs). Applied to every platform the
    /// harness constructs, like `--partitioner`. `None` keeps the
    /// platform's default (hedging off).
    pub hedge: Option<SimDuration>,
    /// Read replica-selection override (`--selection
    /// closest|random|dynamic`): how read coordinators rank candidate
    /// replicas — `dynamic` is the health-aware EWMA + circuit-breaker
    /// policy of the resilience layer. Applied to every platform the
    /// harness constructs. `None` keeps the platform's default (closest).
    pub selection: Option<ReplicaSelection>,
    /// Retry-backoff override (`--backoff`, a bare flag): timed-out
    /// operations wait out an exponential backoff with deterministic jitter
    /// before re-issuing, instead of retrying immediately. Applied to every
    /// platform the harness constructs. Off unless given.
    pub backoff: bool,
}

impl Harness {
    /// Parse the process arguments and apply `--threads` to the global
    /// rayon pool (0 or absent = `RAYON_NUM_THREADS` / machine default).
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().collect())
    }

    /// Parse an explicit argument vector (tests).
    pub fn from_args(args: Vec<String>) -> Self {
        let scale = crate::parse_scale(&args);
        let platform = crate::parse_platform(&args);
        let flag = |name: &str| -> Option<u64> {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse::<u64>().ok())
        };
        let seed_count = flag("--seeds").unwrap_or(1).max(1);
        let seed_base = flag("--seed-base");
        if let Some(threads) = flag("--threads") {
            if threads >= 1 {
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads as usize)
                    .build_global()
                    .expect("configuring the global pool cannot fail");
            }
        }
        // Both override flags fail loudly on a missing value: silently
        // running the default under the requested name is exactly the
        // misattribution these flags' validation exists to prevent.
        let arrival = args.iter().position(|a| a == "--arrival").map(|i| {
            let spec = args.get(i + 1).expect(
                "--arrival needs a value (closed:<clients>|poisson:<ops/s>|uniform:<ops/s>)",
            );
            parse_arrival(spec).unwrap_or_else(|e| panic!("--arrival {spec}: {e}"))
        });
        let workload = args.iter().position(|a| a == "--workload").map(|i| {
            let name = args
                .get(i + 1)
                .expect("--workload needs a value (a-f)")
                .clone();
            assert!(
                presets::by_name(&name).is_some(),
                "--workload {name}: unknown preset (a-f)"
            );
            name
        });
        let partitioner = args.iter().position(|a| a == "--partitioner").map(|i| {
            let name = args
                .get(i + 1)
                .expect("--partitioner needs a value (hash|ordered)");
            Partitioner::from_name(name)
                .unwrap_or_else(|| panic!("--partitioner {name}: unknown mode (hash|ordered)"))
        });
        let repair = args.iter().position(|a| a == "--repair").map(|i| {
            let name = args
                .get(i + 1)
                .expect("--repair needs a value (off|hints|anti-entropy|full)");
            RepairMode::from_name(name).unwrap_or_else(|| {
                panic!("--repair {name}: unknown mode (off|hints|anti-entropy|full)")
            })
        });
        let shards = args.iter().position(|a| a == "--shards").map(|i| {
            let value = args
                .get(i + 1)
                .expect("--shards needs a value (a shard count >= 1)");
            let n: u32 = value
                .parse()
                .unwrap_or_else(|_| panic!("--shards {value}: not a shard count"));
            assert!(n >= 1, "--shards {n}: a run needs at least one shard");
            n
        });
        let hedge = args.iter().position(|a| a == "--hedge").map(|i| {
            let value = args
                .get(i + 1)
                .expect("--hedge needs a value (a delay in ms)");
            let ms: f64 = value
                .parse()
                .unwrap_or_else(|_| panic!("--hedge {value}: not a delay in ms"));
            assert!(
                ms.is_finite() && ms > 0.0,
                "--hedge {value}: the hedge delay must be positive"
            );
            SimDuration::from_micros((ms * 1_000.0).round() as u64)
        });
        let selection = args.iter().position(|a| a == "--selection").map(|i| {
            let name = args
                .get(i + 1)
                .expect("--selection needs a value (closest|random|dynamic)");
            ReplicaSelection::from_name(name).unwrap_or_else(|| {
                panic!("--selection {name}: unknown policy (closest|random|dynamic)")
            })
        });
        let backoff = args.iter().any(|a| a == "--backoff");
        Harness {
            args,
            scale,
            platform,
            seed_count,
            seed_base,
            arrival,
            workload,
            partitioner,
            repair,
            shards,
            hedge,
            selection,
            backoff,
        }
    }

    /// Reject `--workload` for binaries whose workload is intrinsic (fixed
    /// access-pattern grids, microbenches): failing loudly beats silently
    /// running the default mix under the requested name.
    pub fn forbid_workload_override(&self, why: &str) {
        assert!(
            self.workload.is_none(),
            "--workload is not supported by this experiment: {why}"
        );
    }

    /// Reject `--arrival` for binaries whose arrival schedule is intrinsic
    /// (e.g. a fault script timed against a derived open-loop span).
    pub fn forbid_arrival_override(&self, why: &str) {
        assert!(
            self.arrival.is_none(),
            "--arrival is not supported by this experiment: {why}"
        );
    }

    /// Reject `--partitioner` for binaries that never build a cluster
    /// (estimator-only grids): failing loudly beats silently labelling the
    /// output with a mode that was never in effect.
    pub fn forbid_partitioner_override(&self, why: &str) {
        assert!(
            self.partitioner.is_none(),
            "--partitioner is not supported by this experiment: {why}"
        );
    }

    /// Reject `--repair` for binaries that never build a cluster
    /// (estimator-only grids): failing loudly beats silently labelling the
    /// output with a mode that was never in effect.
    pub fn forbid_repair_override(&self, why: &str) {
        assert!(
            self.repair.is_none(),
            "--repair is not supported by this experiment: {why}"
        );
    }

    /// Apply the `--partitioner` override (if given) to a platform the
    /// binary constructed itself. [`Harness::cost_platform`] and
    /// [`Harness::harmony_platform`] already apply it.
    pub fn apply_partitioner(&self, mut platform: Platform) -> Platform {
        if let Some(partitioner) = self.partitioner {
            platform.cluster.partitioner = partitioner;
        }
        platform
    }

    /// Apply the `--repair` override (if given) to a platform the binary
    /// constructed itself, replacing the platform's repair configuration
    /// with the requested mode at built-in pacing defaults.
    /// [`Harness::cost_platform`] and [`Harness::harmony_platform`]
    /// already apply it.
    pub fn apply_repair(&self, mut platform: Platform) -> Platform {
        if let Some(mode) = self.repair {
            platform.cluster.repair = RepairConfig::with_mode(mode);
        }
        platform
    }

    /// Apply the `--shards` override (if given) to a platform the binary
    /// constructed itself: the cluster runs on the sharded event engine
    /// with the requested lane count (clamped to the node count by the
    /// cluster). [`Harness::cost_platform`] and
    /// [`Harness::harmony_platform`] already apply it.
    pub fn apply_shards(&self, mut platform: Platform) -> Platform {
        if let Some(shards) = self.shards {
            platform.cluster.shards = shards;
        }
        platform
    }

    /// Apply the `--hedge` / `--selection` / `--backoff` overrides (if
    /// given) to a platform the binary constructed itself, leaving the
    /// platform's other resilience knobs (backoff pacing, EWMA smoothing,
    /// breaker thresholds) at their configured values.
    /// [`Harness::cost_platform`] and [`Harness::harmony_platform`]
    /// already apply them.
    pub fn apply_resilience(&self, mut platform: Platform) -> Platform {
        if let Some(delay) = self.hedge {
            platform.cluster.resilience.hedge_delay = delay;
        }
        if let Some(selection) = self.selection {
            platform.cluster.read_selection = selection;
        }
        if self.backoff {
            platform.cluster.resilience.backoff = true;
        }
        platform
    }

    /// Reject `--hedge` / `--selection` / `--backoff` for binaries that
    /// never build a cluster (estimator-only grids): failing loudly beats
    /// silently labelling the output with a resilience setup that was never
    /// in effect.
    pub fn forbid_resilience_override(&self, why: &str) {
        assert!(
            self.hedge.is_none() && self.selection.is_none() && !self.backoff,
            "--hedge/--selection/--backoff are not supported by this experiment: {why}"
        );
    }

    /// Apply the `--workload` override (if given) to the binary's default
    /// workload: the named preset's mix, request distribution and scan
    /// bounds replace the default's, while the record/operation counts and
    /// record sizing (already scaled by `--scale`) are kept.
    pub fn apply_workload(&self, base: WorkloadConfig) -> WorkloadConfig {
        match &self.workload {
            Some(name) => {
                let preset = presets::by_name(name).expect("validated in from_args");
                WorkloadConfig {
                    record_count: base.record_count,
                    operation_count: base.operation_count,
                    field_count: base.field_count,
                    field_length: base.field_length,
                    ..preset
                }
            }
            None => base,
        }
    }

    /// Apply the `--arrival` override (if given) to an experiment, keeping
    /// any fault script the binary configured.
    pub fn apply_arrival(&self, experiment: Experiment) -> Experiment {
        match self.arrival {
            Some(arrival) => experiment.with_arrival(arrival),
            None => experiment,
        }
    }

    /// The seed list for a sweep: `base, base+1, …` (`--seed-base` wins over
    /// the binary's default base).
    pub fn seeds(&self, default_base: u64) -> Vec<u64> {
        let base = self.seed_base.unwrap_or(default_base);
        (0..self.seed_count).map(|i| base + i).collect()
    }

    /// The cost-experiment platform for `--platform` at `--cluster-scale`,
    /// with the `--partitioner`, `--repair`, `--shards` and resilience
    /// (`--hedge` / `--selection` / `--backoff`) overrides applied.
    pub fn cost_platform(&self) -> Platform {
        self.apply_resilience(self.apply_shards(self.apply_repair(self.apply_partitioner(
            if self.platform.starts_with("ec2") {
                concord::platforms::ec2_cost(self.scale.cluster)
            } else {
                concord::platforms::grid5000_cost(self.scale.cluster)
            },
        ))))
    }

    /// The Harmony-experiment platform for `--platform` at `--cluster-scale`,
    /// with the `--partitioner`, `--repair`, `--shards` and resilience
    /// (`--hedge` / `--selection` / `--backoff`) overrides applied.
    pub fn harmony_platform(&self) -> Platform {
        self.apply_resilience(self.apply_shards(self.apply_repair(self.apply_partitioner(
            if self.platform.starts_with("ec2") {
                concord::platforms::ec2_harmony(self.scale.cluster)
            } else {
                concord::platforms::grid5000_harmony(self.scale.cluster)
            },
        ))))
    }

    /// Print the standard experiment banner.
    pub fn banner(&self, exp_id: &str, platform: &Platform, workload: &WorkloadConfig) {
        println!(
            "{exp_id}: platform = {}, {} records, {} operations{}",
            platform.name,
            workload.record_count,
            workload.operation_count,
            if self.seed_count > 1 {
                format!(
                    ", {} seeds × {} threads",
                    self.seed_count,
                    rayon::current_num_threads()
                )
            } else {
                String::new()
            }
        );
    }
}

/// Parse an `--arrival` specification: `closed:<clients>`,
/// `poisson:<ops_per_sec>` or `uniform:<ops_per_sec>`.
pub fn parse_arrival(spec: &str) -> Result<ArrivalProcess, String> {
    let (mode, value) = spec
        .split_once(':')
        .ok_or_else(|| "expected <mode>:<value>".to_string())?;
    match mode {
        "closed" => {
            let clients: u32 = value
                .parse()
                .map_err(|_| format!("bad client count {value}"))?;
            if clients == 0 {
                return Err("closed loop needs at least one client".into());
            }
            Ok(ArrivalProcess::closed(clients))
        }
        "poisson" | "uniform" => {
            let rate: f64 = value.parse().map_err(|_| format!("bad rate {value}"))?;
            if !(rate.is_finite() && rate > 0.0) {
                return Err(format!("rate must be positive, got {value}"));
            }
            Ok(if mode == "poisson" {
                ArrivalProcess::OpenLoopPoisson { ops_per_sec: rate }
            } else {
                ArrivalProcess::OpenLoopUniform { ops_per_sec: rate }
            })
        }
        other => Err(format!(
            "unknown arrival mode {other} (closed|poisson|uniform)"
        )),
    }
}

/// A declarative `(policy × seed)` grid over one [`Experiment`].
#[derive(Debug, Clone)]
pub struct Sweep {
    experiment: Experiment,
    policies: Vec<PolicySpec>,
    seeds: Vec<u64>,
}

impl Sweep {
    /// A sweep over `experiment`'s platform/workload, initially with the
    /// experiment's own seed as the only seed.
    pub fn new(experiment: Experiment) -> Self {
        let seed = experiment.seed;
        Sweep {
            experiment,
            policies: Vec::new(),
            seeds: vec![seed],
        }
    }

    /// Set the policies (grid rows).
    pub fn with_policies(mut self, specs: &[PolicySpec]) -> Self {
        self.policies = specs.to_vec();
        self
    }

    /// Set the seeds (grid columns; empty = keep the experiment's seed).
    pub fn with_seeds(mut self, seeds: &[u64]) -> Self {
        if !seeds.is_empty() {
            self.seeds = seeds.to_vec();
        }
        self
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.policies.len() * self.seeds.len()
    }

    /// True when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Run every `(policy, seed)` point — in parallel on the rayon pool,
    /// each point owning its cluster and runtime — and return the reports in
    /// grid order (policy-major, seed-minor), independent of scheduling.
    pub fn run(&self) -> SweepResults {
        let points: Vec<(usize, usize)> = (0..self.policies.len())
            .flat_map(|p| (0..self.seeds.len()).map(move |s| (p, s)))
            .collect();
        let reports: Vec<RunReport> = points
            .into_par_iter()
            .map(|(p, s)| {
                let mut experiment = self.experiment.clone();
                experiment.seed = self.seeds[s];
                experiment.run_spec(&self.policies[p])
            })
            .collect();
        SweepResults {
            policies: self.policies.clone(),
            seeds: self.seeds.clone(),
            reports,
        }
    }
}

/// The ordered outcome of [`Sweep::run`].
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// Grid rows, in declaration order.
    pub policies: Vec<PolicySpec>,
    /// Grid columns, in declaration order.
    pub seeds: Vec<u64>,
    /// One report per point, policy-major and seed-minor.
    pub reports: Vec<RunReport>,
}

impl SweepResults {
    /// The report of one `(policy, seed)` point.
    pub fn report(&self, policy_idx: usize, seed_idx: usize) -> &RunReport {
        &self.reports[policy_idx * self.seeds.len() + seed_idx]
    }

    /// All seed reports of one policy, in seed order.
    pub fn per_seed(&self, policy_idx: usize) -> &[RunReport] {
        let n = self.seeds.len();
        &self.reports[policy_idx * n..(policy_idx + 1) * n]
    }

    /// The first-seed report of every policy, in policy order — the
    /// single-seed view the paper-comparison tables print.
    pub fn primary(&self) -> Vec<RunReport> {
        (0..self.policies.len())
            .map(|p| self.report(p, 0).clone())
            .collect()
    }

    /// Mean / standard deviation / 95% CI across seeds, per policy.
    /// Deterministic: folds every statistic in seed order.
    pub fn summaries(&self) -> Vec<PolicySummary> {
        (0..self.policies.len())
            .map(|p| {
                let runs = self.per_seed(p);
                let stat = |f: &dyn Fn(&RunReport) -> f64| {
                    SeedStat::from_samples(&runs.iter().map(f).collect::<Vec<_>>())
                };
                PolicySummary {
                    policy: self.policies[p].label(),
                    throughput: stat(&|r| r.throughput_ops_per_sec),
                    stale_rate: stat(&|r| r.stale_read_rate),
                    read_p95_ms: stat(&|r| r.read_latency_ms.p95),
                    cost_usd: stat(&|r| r.total_cost_usd()),
                    makespan_secs: stat(&|r| r.makespan.as_secs_f64()),
                }
            })
            .collect()
    }
}

/// Mean and spread of one metric across the seeds of a sweep row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedStat {
    /// Arithmetic mean (seed-order fold).
    pub mean: f64,
    /// Sample standard deviation (0 for a single seed).
    pub std_dev: f64,
    /// Half-width of the normal-approximation 95% confidence interval.
    pub ci95: f64,
    /// Number of seeds.
    pub n: usize,
}

impl SeedStat {
    /// Reduce samples in input order.
    pub fn from_samples(xs: &[f64]) -> Self {
        let n = xs.len();
        if n == 0 {
            return SeedStat {
                mean: 0.0,
                std_dev: 0.0,
                ci95: 0.0,
                n: 0,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        SeedStat {
            mean,
            std_dev,
            ci95: 1.96 * std_dev / (n as f64).sqrt(),
            n,
        }
    }
}

impl std::fmt::Display for SeedStat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.n > 1 {
            write!(f, "{:.1} ±{:.1}", self.mean, self.ci95)
        } else {
            write!(f, "{:.1}", self.mean)
        }
    }
}

/// Across-seed summary of one sweep row (policy).
#[derive(Debug, Clone)]
pub struct PolicySummary {
    /// Policy label.
    pub policy: String,
    /// Throughput in ops/s.
    pub throughput: SeedStat,
    /// Ground-truth stale-read rate (fraction).
    pub stale_rate: SeedStat,
    /// Read-latency p95 in ms.
    pub read_p95_ms: SeedStat,
    /// Total bill in USD.
    pub cost_usd: SeedStat,
    /// Simulated makespan in seconds.
    pub makespan_secs: SeedStat,
}

/// Render the across-seed summary table (mean ± 95% CI per metric).
pub fn render_summary_table(title: &str, summaries: &[PolicySummary]) -> String {
    // Each metric is pre-formatted as one "mean ±ci" cell so the header and
    // data columns share the same widths.
    let cell = |s: &SeedStat, scale: f64, prec: usize| {
        format!("{:.prec$} ±{:.prec$}", s.mean * scale, s.ci95 * scale)
    };
    let mut out = String::new();
    out.push_str(&format!("\n== {title} (mean ± 95% CI across seeds) ==\n"));
    out.push_str(&format!(
        "{:<28} {:>5} {:>18} {:>14} {:>16} {:>17} {:>14}\n",
        "policy", "seeds", "thr (ops/s)", "stale %", "r-lat p95 (ms)", "cost ($)", "makespan (s)"
    ));
    for s in summaries {
        out.push_str(&format!(
            "{:<28} {:>5} {:>18} {:>14} {:>16} {:>17} {:>14}\n",
            s.policy,
            s.throughput.n,
            cell(&s.throughput, 1.0, 1),
            cell(&s.stale_rate, 100.0, 2),
            cell(&s.read_p95_ms, 1.0, 3),
            cell(&s.cost_usd, 1.0, 4),
            cell(&s.makespan_secs, 1.0, 2),
        ));
    }
    out
}

/// Run an arbitrary experiment grid in parallel and return the results in
/// input order (the generic form of [`Sweep::run`] for grids that are not
/// policy sweeps — estimator grids, scenario matrices).
pub fn run_grid<T, R, F>(points: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    points.into_par_iter().map(f).collect()
}

/// Run a grid of **wall-clock measurements** strictly sequentially: timing
/// points must not compete *with each other* for cores, so points execute
/// one at a time in input order. Parallelism *inside* a point is
/// deliberately left alive — the sharded engine's window dispatch runs on
/// the pool the process configured (`--threads`), and with `--shards N`
/// that dispatch is part of what the point measures. (This used to install
/// a one-thread pool around the grid, which would silently serialize the
/// multi-core engine under measurement.)
pub fn run_timed_grid<T, R, F>(points: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    points.into_iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_experiment(seed: u64) -> Experiment {
        let platform = concord::platforms::grid5000_cost(0.15);
        let mut workload = presets::paper_heavy_read_update(500, 1_200);
        workload.field_count = 1;
        workload.field_length = 256;
        Experiment::new(platform, workload)
            .with_clients(8)
            .with_adaptation_interval(SimDuration::from_millis(200))
            .with_seed(seed)
    }

    #[test]
    fn harness_parses_the_shared_flags() {
        let args: Vec<String> = [
            "exp",
            "--scale",
            "0.01",
            "--platform",
            "ec2",
            "--seeds",
            "4",
            "--seed-base",
            "100",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let h = Harness::from_args(args);
        assert!((h.scale.workload - 0.01).abs() < 1e-12);
        assert_eq!(h.platform, "ec2");
        assert_eq!(h.seeds(1), vec![100, 101, 102, 103]);
        assert!(h.cost_platform().name.contains("ec2"));

        let h = Harness::from_args(vec!["exp".into()]);
        assert_eq!(h.seeds(7), vec![7]);
        assert!(h.harmony_platform().name.contains("grid5000"));
        assert!(h.arrival.is_none());
        assert!(h.workload.is_none());
        assert!(h.partitioner.is_none());
        assert!(h.repair.is_none());
        assert!(h.shards.is_none());
        // Absent overrides are no-ops and pass the forbid checks.
        h.forbid_workload_override("n/a");
        h.forbid_arrival_override("n/a");
        h.forbid_partitioner_override("n/a");
        h.forbid_repair_override("n/a");
    }

    #[test]
    fn harness_parses_the_partitioner_override() {
        let args: Vec<String> = ["exp", "--partitioner", "ordered"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let h = Harness::from_args(args);
        assert_eq!(h.partitioner, Some(Partitioner::Ordered));
        // Every harness-constructed platform runs under the override.
        assert_eq!(h.cost_platform().cluster.partitioner, Partitioner::Ordered);
        assert_eq!(
            h.harmony_platform().cluster.partitioner,
            Partitioner::Ordered
        );
        let custom = h.apply_partitioner(concord::platforms::laptop());
        assert_eq!(custom.cluster.partitioner, Partitioner::Ordered);
        // No override leaves the platform default untouched.
        let plain = Harness::from_args(vec!["exp".into()]);
        assert_eq!(plain.cost_platform().cluster.partitioner, Partitioner::Hash);
    }

    #[test]
    #[should_panic(expected = "unknown mode")]
    fn unknown_partitioner_fails_loudly() {
        Harness::from_args(vec!["exp".into(), "--partitioner".into(), "range".into()]);
    }

    #[test]
    fn harness_parses_the_repair_override() {
        let args: Vec<String> = ["exp", "--repair", "full"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let h = Harness::from_args(args);
        assert_eq!(h.repair, Some(RepairMode::Full));
        // Every harness-constructed platform runs under the override.
        assert_eq!(h.cost_platform().cluster.repair.mode, RepairMode::Full);
        assert_eq!(h.harmony_platform().cluster.repair.mode, RepairMode::Full);
        let custom = h.apply_repair(concord::platforms::laptop());
        assert_eq!(custom.cluster.repair.mode, RepairMode::Full);
        // No override leaves the platform default (repair off) untouched.
        let plain = Harness::from_args(vec!["exp".into()]);
        assert_eq!(plain.cost_platform().cluster.repair.mode, RepairMode::Off);
        // The hyphenated spelling parses too.
        let h = Harness::from_args(vec!["exp".into(), "--repair".into(), "anti-entropy".into()]);
        assert_eq!(h.repair, Some(RepairMode::AntiEntropy));
    }

    #[test]
    #[should_panic(expected = "unknown mode")]
    fn unknown_repair_mode_fails_loudly() {
        Harness::from_args(vec!["exp".into(), "--repair".into(), "merkle".into()]);
    }

    #[test]
    fn harness_parses_the_shards_override() {
        let args: Vec<String> = ["exp", "--shards", "4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let h = Harness::from_args(args);
        assert_eq!(h.shards, Some(4));
        // Every harness-constructed platform runs under the override.
        assert_eq!(h.cost_platform().cluster.shards, 4);
        assert_eq!(h.harmony_platform().cluster.shards, 4);
        let custom = h.apply_shards(concord::platforms::laptop());
        assert_eq!(custom.cluster.shards, 4);
        // No override leaves the platform default (unsharded) untouched.
        let plain = Harness::from_args(vec!["exp".into()]);
        assert!(plain.cost_platform().cluster.shards <= 1);
    }

    #[test]
    #[should_panic(expected = "not a shard count")]
    fn non_numeric_shard_count_fails_loudly() {
        Harness::from_args(vec!["exp".into(), "--shards".into(), "many".into()]);
    }

    #[test]
    fn harness_parses_the_resilience_overrides() {
        let args: Vec<String> = [
            "exp",
            "--hedge",
            "0.5",
            "--selection",
            "dynamic",
            "--backoff",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let h = Harness::from_args(args);
        assert_eq!(h.hedge, Some(SimDuration::from_micros(500)));
        assert_eq!(h.selection, Some(ReplicaSelection::Dynamic));
        assert!(h.backoff);
        // Every harness-constructed platform runs under the overrides.
        let cost = h.cost_platform();
        assert_eq!(
            cost.cluster.resilience.hedge_delay,
            SimDuration::from_micros(500)
        );
        assert!(cost.cluster.resilience.hedging_enabled());
        assert!(cost.cluster.resilience.backoff);
        assert_eq!(cost.cluster.read_selection, ReplicaSelection::Dynamic);
        let harmony = h.harmony_platform();
        assert_eq!(harmony.cluster.read_selection, ReplicaSelection::Dynamic);
        let custom = h.apply_resilience(concord::platforms::laptop());
        assert!(custom.cluster.resilience.hedging_enabled());
        // Integral milliseconds parse too (the CI smoke spelling).
        let h = Harness::from_args(vec!["exp".into(), "--hedge".into(), "20".into()]);
        assert_eq!(h.hedge, Some(SimDuration::from_millis(20)));
        assert!(!h.backoff, "--backoff is a bare flag, off unless given");
        // No override leaves the platform default (resilience off) intact.
        let plain = Harness::from_args(vec!["exp".into()]);
        assert!(plain.hedge.is_none() && plain.selection.is_none() && !plain.backoff);
        let cost = plain.cost_platform();
        assert!(!cost.cluster.resilience.hedging_enabled());
        assert!(!cost.cluster.resilience.backoff);
        assert_eq!(cost.cluster.read_selection, ReplicaSelection::Closest);
        plain.forbid_resilience_override("n/a");
    }

    #[test]
    #[should_panic(expected = "unknown policy")]
    fn unknown_selection_policy_fails_loudly() {
        Harness::from_args(vec!["exp".into(), "--selection".into(), "psychic".into()]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_hedge_delay_fails_loudly() {
        Harness::from_args(vec!["exp".into(), "--hedge".into(), "0".into()]);
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn forbid_rejects_present_resilience_overrides() {
        let h = Harness::from_args(vec!["exp".into(), "--backoff".into()]);
        h.forbid_resilience_override("this experiment never builds a cluster");
    }

    #[test]
    fn harness_parses_arrival_and_workload_overrides() {
        let args: Vec<String> = ["exp", "--arrival", "poisson:2500", "--workload", "e"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let h = Harness::from_args(args);
        assert_eq!(
            h.arrival,
            Some(ArrivalProcess::OpenLoopPoisson {
                ops_per_sec: 2500.0
            })
        );
        // The override keeps the base counts/sizing, swaps the mix.
        let base = presets::paper_heavy_read_update(1_234, 5_678);
        let cfg = h.apply_workload(base.clone());
        assert_eq!(cfg.record_count, 1_234);
        assert_eq!(cfg.operation_count, 5_678);
        assert_eq!(cfg.scan_proportion, presets::ycsb_e().scan_proportion);
        // apply_arrival rewires the experiment's scenario.
        let exp = Experiment::new(concord::platforms::laptop(), base);
        let exp = h.apply_arrival(exp);
        assert!(!exp.scenario().is_closed_loop());
    }

    #[test]
    fn parse_arrival_accepts_modes_and_rejects_garbage() {
        assert_eq!(
            parse_arrival("closed:8").unwrap(),
            ArrivalProcess::closed(8)
        );
        assert_eq!(
            parse_arrival("uniform:100").unwrap(),
            ArrivalProcess::OpenLoopUniform { ops_per_sec: 100.0 }
        );
        assert!(parse_arrival("poisson").is_err(), "missing value");
        assert!(parse_arrival("poisson:-3").is_err(), "negative rate");
        assert!(parse_arrival("closed:0").is_err(), "zero clients");
        assert!(parse_arrival("warp:9").is_err(), "unknown mode");
    }

    #[test]
    #[should_panic(expected = "--workload needs a value")]
    fn dangling_workload_flag_fails_loudly() {
        Harness::from_args(vec!["exp".into(), "--workload".into()]);
    }

    #[test]
    #[should_panic(expected = "unknown preset")]
    fn unknown_workload_preset_fails_loudly() {
        Harness::from_args(vec!["exp".into(), "--workload".into(), "z".into()]);
    }

    #[test]
    #[should_panic(expected = "--arrival needs a value")]
    fn dangling_arrival_flag_fails_loudly() {
        Harness::from_args(vec!["exp".into(), "--arrival".into()]);
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn forbid_rejects_present_overrides() {
        let h = Harness::from_args(vec!["exp".into(), "--workload".into(), "d".into()]);
        h.forbid_workload_override("this experiment fixes its own mixes");
    }

    #[test]
    fn sweep_runs_the_full_grid_in_order() {
        let sweep = Sweep::new(tiny_experiment(3))
            .with_policies(&[PolicySpec::Eventual, PolicySpec::Quorum])
            .with_seeds(&[3, 4, 5]);
        assert_eq!(sweep.len(), 6);
        let results = sweep.run();
        assert_eq!(results.reports.len(), 6);
        assert_eq!(results.per_seed(0).len(), 3);
        assert_eq!(results.report(1, 2).policy, "quorum");
        let primary = results.primary();
        assert_eq!(primary.len(), 2);
        assert_eq!(primary[0].policy, "eventual(ONE)");
        // Every point completed the workload.
        assert!(results.reports.iter().all(|r| r.total_ops == 1_200));
    }

    #[test]
    fn sweep_matches_sequential_experiment_runs() {
        let exp = tiny_experiment(9);
        let sweep_report = Sweep::new(exp.clone())
            .with_policies(&[PolicySpec::Quorum])
            .run();
        let direct = exp.run_spec(&PolicySpec::Quorum);
        assert_eq!(sweep_report.reports[0], direct);
    }

    #[test]
    fn summaries_reduce_across_seeds_deterministically() {
        let sweep = Sweep::new(tiny_experiment(1))
            .with_policies(&[PolicySpec::Eventual])
            .with_seeds(&[1, 2, 3, 4]);
        let a = sweep.run().summaries();
        let b = sweep.run().summaries();
        assert_eq!(a[0].throughput, b[0].throughput);
        assert_eq!(a[0].throughput.n, 4);
        assert!(a[0].throughput.mean > 0.0);
        assert!(a[0].throughput.ci95 >= 0.0);
        let table = render_summary_table("t", &a);
        assert!(table.contains("eventual"));
    }

    #[test]
    fn seed_stat_basics() {
        let s = SeedStat::from_samples(&[2.0, 4.0, 6.0, 8.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!(s.std_dev > 0.0);
        assert_eq!(s.n, 4);
        let single = SeedStat::from_samples(&[3.0]);
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.ci95, 0.0);
        assert_eq!(SeedStat::from_samples(&[]).n, 0);
    }

    #[test]
    fn grids_preserve_input_order() {
        let out = run_grid((0..64u64).collect(), |x| x * 3);
        assert_eq!(out, (0..64u64).map(|x| x * 3).collect::<Vec<_>>());
        let timed = run_timed_grid(vec![1u32, 2, 3], |x| x + 1);
        assert_eq!(timed, vec![2, 3, 4]);
    }
}
