//! # concord-bench — benchmark harness and experiment binaries
//!
//! This crate regenerates every result of the paper's evaluation section
//! (see `DESIGN.md` and `EXPERIMENTS.md` at the workspace root):
//!
//! | Binary | Experiment |
//! |---|---|
//! | `exp_fig1` | FIG1 — the stale-read window model (analytic vs Monte-Carlo) |
//! | `exp_harmony` | EXP-A1/A2 — Harmony vs static eventual/strong on Grid'5000-like and EC2-like platforms |
//! | `exp_cost_breakdown` | EXP-B1 — consistency impact on the monetary bill (per-level sweep) |
//! | `exp_efficiency_samples` | EXP-B2a — consistency-cost efficiency under different access patterns |
//! | `exp_bismar` | EXP-B2b — Bismar vs static levels |
//! | `exp_behavior` | EXP-C — application behavior modeling |
//! | `exp_faults` | EXP-F — adaptive policies under a scripted outage (open-loop load, crash/partition/degradation) |
//! | `exp_throughput` | hot-path wall-clock throughput (engine, storage, cluster, bulk lane) |
//! | `exp_sweep` | parallel multi-seed sweep wall-clock + determinism check |
//!
//! Criterion micro-benchmarks (`cargo bench -p concord-bench`) cover the
//! substrates (ring lookup, zipfian sampling, event queue, estimator) and
//! small end-to-end runs of the A/B experiments.
//!
//! Every binary runs through the shared harness in [`sweep`] and accepts
//! `--scale <f64>` (default 0.002 for the workload and ~0.2 for the cluster)
//! so the full-size paper setups can also be simulated when time allows:
//! `--scale 1.0` reproduces the paper's operation counts. The cluster
//! experiments additionally take `--seeds <n>` (multi-seed sweeps with 95%
//! confidence intervals), `--threads <n>` (pool size), `--arrival
//! closed:<clients>|poisson:<ops/s>|uniform:<ops/s>` (arrival-mode override),
//! `--workload a..f` (YCSB mix override, including the latest-distribution D
//! and short-scan E presets), `--partitioner hash|ordered` (placement
//! mode: token-ring hash placement or contiguous key-range ownership with
//! coverage-faithful scans), `--repair off|hints|anti-entropy|full`
//! (repair plane, below) and `--shards <n>` (conservative-PDES sharded
//! engine, below — each shard count a deterministic universe, byte-identical
//! at any thread count).
//!
//! ## Scenarios: arrival modes and fault scripts
//!
//! Every experiment point executes a `concord_core::Scenario` through the
//! one scenario driver (`AdaptiveRuntime::run_scenario`): a **closed loop**
//! (N clients, each issuing on completion — the paper's YCSB setup and the
//! default) or an **open loop** (a pre-sorted Poisson/uniform arrival
//! schedule bulk-loaded through `Cluster::submit_batch`, so the offered
//! load stays fixed while the cluster degrades), plus a **fault script** —
//! a list of `{at, action}` entries applied at their scripted offsets,
//! interleaved with the policy's adaptation epochs. Actions cover
//! `CrashNode`/`RecoverNode` (ring reconfiguration onto the survivors),
//! `NodeDown`/`NodeUp` (transient outage, ring untouched),
//! `PartitionDcs`/`HealDcs` (messages between the pair lost in transit) and
//! `DegradeLink`/`RestoreLink` (per-link-class delay multipliers). The
//! *fault-script format* is simply the serde serialization of those types:
//!
//! ```json
//! { "arrival": { "OpenLoopPoisson": { "ops_per_sec": 2000.0 } },
//!   "faults": [
//!     { "at": 1500000, "action": { "CrashNode": 1 } },
//!     { "at": 5000000, "action": { "PartitionDcs": [0, 1] } },
//!     { "at": 7000000, "action": { "HealDcs": [0, 1] } } ] }
//! ```
//!
//! (offsets in µs from the run start). Scenarios are data, so `(arrival ×
//! topology × fault-script × seed)` grids run through the same `Sweep`
//! machinery as policy sweeps, with the same contract: fault injection is
//! deterministic per seed, and per-seed reports stay byte-identical at any
//! thread count (`exp_faults` asserts this on every run, as do the
//! fault-scenario golden digests in
//! `crates/cluster/tests/golden_determinism.rs` and the 1/2/4/8-thread
//! invariance tests in `crates/bench/tests/parallel_sweep.rs`). Timeouts
//! can be retried (`ClusterConfig::retry_on_timeout`), with every re-issue
//! accounted in the report's `retries` column; fault-scenario tail
//! latencies can be validated against the histogram's ≤3% error bound via
//! the opt-in exact recorder (`ClusterConfig::exact_latency_percentiles`,
//! `LatencyStats::exact_quantile_ms`).
//!
//! ## The repair plane: `--repair off|hints|anti-entropy|full`
//!
//! By default a faulted run heals only incidentally: divergence left by an
//! outage lingers until ordinary writes happen to overwrite it, and
//! `exp_faults` shows the resulting post-recovery stale tail. `--repair`
//! turns on the cluster's background repair plane
//! (`ClusterConfig::repair`, `concord_cluster::RepairConfig`) for every
//! platform the harness constructs:
//!
//! * **`hints`** — hinted handoff: writes fanning out to a *down-but-in-ring*
//!   replica are queued (bounded per-destination, overflow metered and left
//!   to anti-entropy) and replayed on a timer when the node comes back.
//! * **`anti-entropy`** — background sweeps walk node pairs, compare cheap
//!   per-page version digests, and stream only the strictly-newer records
//!   of divergent pages; crash/recover reconfigurations additionally
//!   schedule targeted recovery syncs so survivors (and later the rejoined
//!   node) re-acquire the ranges that moved.
//! * **`full`** — both.
//!
//! Repair work is metered (`hints_queued`/`hints_replayed`/`hints_dropped`,
//! `repair_pages_compared`/`repair_records_streamed`, and a per-link-class
//! `repair_traffic` breakdown in every `RunReport`) and its bytes flow into
//! the billable traffic totals, so the bill prices convergence. With
//! `--repair off` (the default) the repair plane adds **zero** events, RNG
//! draws or meters — all pre-existing golden digests are byte-identical —
//! and `golden_repair_run` pins the repair-on trajectory the same way.
//! `examples/fault_injection.rs` runs the same faulted grid with repair off
//! and full and prints what repair buys (the post-outage stale tail) against
//! what it costs (the repair bytes on the bill's network line);
//! `crates/cluster/tests/repair_plane.rs` pins both directions.
//!
//! ## The sweep engine and its determinism contract
//!
//! Paper-scale evaluation is a grid — policies × platforms × seeds — and
//! every `(policy, seed)` point owns its `Cluster`/`AdaptiveRuntime`, so the
//! grid is embarrassingly parallel. [`Sweep`] declares the grid;
//! [`Sweep::run`] executes it on the vendored rayon pool (a *real*
//! thread-pool since PR 2: dynamic chunking over OS threads, results
//! recombined in input order) and [`SweepResults::summaries`] reduces across
//! seeds (mean / sample std-dev / normal-approximation 95% CI) in a
//! deterministic seed-order fold.
//!
//! The contract, pinned by `crates/bench/tests/parallel_sweep.rs` and the
//! Monte-Carlo determinism test in `concord-staleness`: **thread count is a
//! pure performance knob**. Per-seed `RunReport`s are byte-identical at 1, 2
//! and N threads, because every point derives all randomness from its own
//! seed and the pool collects results by input index, never by completion
//! order. `BENCH_parallel.json` at the workspace root records the sweep
//! wall-clock baseline (sequential vs pooled) produced by `exp_sweep`;
//! re-measure with `exp_sweep --scale 0.05 --seeds 8 --out <file>` on a
//! multi-core machine and append dated entries rather than overwriting
//! history.
//!
//! ## Bulk-loaded open-loop arrivals
//!
//! Open-loop experiments know their whole arrival timeline up front:
//! `CoreWorkload::timed_ops` pairs the operation stream with a **sorted**
//! arrival schedule (monotone by construction), and
//! `Cluster::submit_batch` routes it through the event queue's O(1) bulk
//! FIFO lane instead of paying one heap push per operation — the same trick
//! PR 1's timeout lane plays, on a third lane so arrival front-running
//! cannot evict timeouts from theirs. Sortedness is *asserted*, never
//! silently repaired; delivery is byte-identical to per-op submission (both
//! lanes share one sequence counter). `exp_throughput`'s `cluster_bulk`
//! substrate measures the path end to end; `Cluster::run_until` lets
//! windowed drivers drain without the clock passing the next window.
//!
//! ## Hot-path architecture and benchmark methodology
//!
//! Paper-sized runs replay millions of timed operations through the cluster
//! simulator, so the per-event cost of the substrate bounds every experiment
//! above it. The hot path is engineered to be allocation-free and
//! hash-cheap; the load-bearing pieces are:
//!
//! * **Event queue** (`concord_sim::EventQueue`): a binary heap of
//!   `(packed time‖seq key, event)` entries with the payload **inline** —
//!   simulator events are 32 bytes, so moving them during sifts costs less
//!   than the former side-slab's two extra random-access writes and
//!   free-list traffic per event. The timeout lane (`schedule_timeout`) has
//!   two structures behind one interface: timeouts arriving in sorted key
//!   order — the single constant `op_timeout` configuration produces
//!   exactly that — append to a plain FIFO in O(1) with no further
//!   bookkeeping, and heterogeneous/out-of-order timeouts take the
//!   O(1)-amortized hierarchical timer wheel. All lanes share one sequence
//!   counter and every pop takes the globally smallest key, so lane routing
//!   can never reorder delivery.
//! * **Operation state** (`concord_cluster::OpSlab`): a generation-checked
//!   slab addressed directly by `OpId = generation << 32 | slot` replaces
//!   three `HashMap<OpId, _>` tables; stale ids from already-completed
//!   operations (late timeouts, straggler responses) miss on the generation
//!   compare, exactly as a map lookup of a removed key would.
//! * **Storage layout — one `PagedTable<T>` under everything**: the
//!   workload generators guarantee (and assert, loudly) the *key-density
//!   contract*: record ids are dense `u64`s below the configured record
//!   count, inserts extending the space by one. Every per-event per-key
//!   table exploits it through the **one generic paged direct-index
//!   substrate** (`concord_cluster::PagedTable<T>`): fixed 4096-slot pages
//!   allocated on first write, lookups a shift, a mask and a load, reads of
//!   never-written pages allocating nothing, and vacancy left to each
//!   caller's own sentinel. Its users are the replica store
//!   (`ReplicaStore`: presence = non-zero version, no extra bits), the
//!   staleness oracle (per-slot binary-searched bounded version history,
//!   vacancy = zero acked writes), the ring-placement cache
//!   (`key → [NodeId; RF]` in RF lanes per slot, `u32::MAX` sentinel,
//!   computed once per key per ring epoch, invalidated wholesale on
//!   crash/recover reconfiguration), and the ordered partitioner's
//!   per-slice range index (below). Direct indexing also makes YCSB-E
//!   faithful: records adjacent in id are adjacent in memory, so a range
//!   scan is one streaming pass over consecutive slots per contacted
//!   replica (`ReplicaStore::read_range`) — metered as `scan_len` storage
//!   reads and byte-weighted response traffic. A differential property test
//!   drives random op streams through the paged table and the old
//!   `FxHashMap` reference model, asserting identical results and meters
//!   (`crates/cluster/tests/store_differential.rs`).
//! * **Pluggable partitioner — hash or ordered placement**: every cluster
//!   carries a `Partitioner` (`--partitioner hash|ordered` on every
//!   cluster-driving binary; part of `ClusterConfig`, so sweeps grid over
//!   it like any other knob). `hash` is the consistent-hash token ring
//!   (Cassandra's random partitioner): consecutive record ids scatter, so
//!   a scan's data replica returns only the subset of the range it owns —
//!   cost-faithful but coverage-partial. `ordered` is Cassandra's ordered
//!   partitioner: the dense key space is cut into contiguous 4096-key
//!   slices (aligned with the paged tables' pages), adjacent slices
//!   round-robin over nodes, and crashed nodes' slices fall to the next
//!   survivor in id order. Ordered scans are **coverage-faithful**: the
//!   coordinator splits a range at ownership boundaries, fans each segment
//!   out to its own owners at the read's consistency level, and gathers —
//!   a `scan_len` scan returns `scan_len` contiguous records
//!   (`CompletedOp::records_returned`), pinned by
//!   `crates/cluster/tests/ordered_coverage.rs` and its own golden digest
//!   (`golden_ordered_scan_run`). All pre-existing goldens are
//!   byte-identical under the default `hash` mode.
//! * **Per-operation work**: replica sets are written into reusable scratch
//!   buffers (the placement cache falls back to `Ring::replicas_into`'s
//!   flat sorted token walk on a cold key); read-replica selection ranks
//!   candidates via a precomputed coordinator→node mean-latency table; link
//!   classes come from a precomputed `n × n` table; message and storage
//!   delays are drawn through `CompiledDelay` samplers (validation and
//!   derived constants resolved once, bit-identical draws); the
//!   contacted-replica list lives inline in the read state (`InlineVec`).
//!   Latency metrics stream into log-bucketed histograms — bounded memory,
//!   no sort per quantile.
//!
//! The `exp_throughput` binary measures this substrate end to end (wall-clock
//! events/sec and ns/op, best-of-N runs because shared machines are noisy)
//! and `BENCH_hotpath.json` at the workspace root records the before/after
//! baseline of the hot-path overhaul (hand-assembled from two
//! `exp_throughput` runs; the binary itself emits one measurement object
//! per run). Future performance PRs should re-run `exp_throughput --scale
//! 0.25 --repeat 5` under the same release profile, compare against the
//! recorded `after` block, and append a new dated entry rather than
//! overwriting history. Fixed-seed behaviour is pinned by
//! `crates/cluster/tests/golden_determinism.rs`: any hot-path change must
//! keep those digests byte-identical (or consciously re-capture them with
//! `GOLDEN_PRINT=1` and explain why the simulation's outputs changed).
//!
//! ## The sharded execution model: `--shards <n>`
//!
//! A single big run is one event stream, and the event queue above caps it
//! at a few million events per second. `--shards <n>` (every
//! cluster-driving binary; `ClusterConfig::shards`, so sweeps can grid over
//! it) runs the cluster on `concord_sim::ShardedEventQueue`: the
//! conservative parallel-discrete-event decomposition of that stream.
//!
//! * **Shard map.** Nodes are ordered by `(datacenter, id)` and cut into
//!   `n` contiguous groups, so datacenters stay shard-contiguous and
//!   intra-DC traffic (the bulk of replication chatter) stays shard-local.
//!   Each shard owns an event lane; operations are **coordinator-homed** —
//!   the coordinator is pre-drawn from the control RNG at submission and
//!   the whole op lifecycle (arrival, acks, timeouts, retries) runs on the
//!   coordinator's shard, so with DC-aligned cuts every cross-shard
//!   message is a real inter-DC link crossing whose delay clears the
//!   lookahead bound.
//! * **Lookahead windows.** Shards advance in windows bounded by the
//!   *lookahead* — but per shard, not globally. The engine keeps an
//!   `n × n` **lookahead matrix**: entry `(i, j)` is the minimum delay any
//!   link class crossing from shard `i` to shard `j` can produce (infimum
//!   of the delay distribution × the current degradation factor,
//!   recomputed when a fault script degrades or restores a link class).
//!   Each shard's bound is its row minimum over the *other* shards, so a
//!   shard whose only cross-shard neighbours sit behind a WAN link earns a
//!   WAN-sized window even when some other shard pair is LAN-close. With
//!   no cross-shard link class at all, the bound falls back to the
//!   configured `op_timeout` rather than a hard-coded constant. No message
//!   sent inside a window can demand execution before the window ends,
//!   which is the classic conservative-PDES safety argument.
//! * **Parallel window execution.** Within a window, each shard's event
//!   batch runs as a task on the vendored rayon work-stealing pool
//!   (`--threads <n>` sizes it), with handler state partitioned per shard:
//!   every shard draws from its own deterministic RNG stream
//!   (`SimRng::shard_stream`), allocates op ids from its own strided slab,
//!   and streams metrics into its own sink. Versions are timestamp-packed
//!   (`(µs+1)‖seq‖shard`) so last-write-wins follows simulated time, not
//!   shard interleaving.
//! * **Barrier fold — elided when unused.** Closing a window has two
//!   tiers. The cheap tier runs at *every* close: staged cross-shard
//!   data-plane messages move from per-shard outbox arenas to their
//!   destination lanes (the next window's floor depends on them). The
//!   expensive serial tier — the **fold**: write acks landing in the
//!   central staleness oracle's time-indexed history, completed reads
//!   classified against that history *as of their own issue instant*,
//!   control effects (abandons, hints, resubmits) applied, outputs
//!   published — only runs when something demands it: a window that staged
//!   control effects folds at its own barrier, and the deferred
//!   ack/completion buffer flushes when it crosses a size threshold or the
//!   run drains. Every other barrier is **elided**, and runs of windows
//!   with nothing to deliver at all are crossed by a single cursor
//!   **fast-forward** instead of barrier-by-barrier marching. Elision is
//!   exact, not approximate: deferred work is order-preserving (per-window
//!   output time ranges are disjoint and increasing), acks are always
//!   applied before the reads they could affect are classified, and
//!   anything that could perturb a later window forces a fold at its own
//!   window — so a fold may be *deferred*, never *changed*
//!   (`crates/cluster/tests/barrier_elision.rs` pins on/off
//!   byte-identity under randomized fault scripts;
//!   `ClusterConfig::eager_folds` turns elision off for debugging).
//!   Sampled delays that undercut the lookahead bound are clamped to the
//!   window edge and metered (`lookahead_violations` in the `RunReport`,
//!   alongside `shards`, `shard_windows`, `cross_shard_staged`,
//!   `parallel_batches`, `barrier_folds`, `elided_barriers`,
//!   `fast_forwards` and `max_batch_len`; coordinator-homed routing keeps
//!   violations at zero in practice).
//!
//! **The determinism contract.** `--shards 1` runs the sequential engine
//! and stays byte-identical to every pre-existing golden digest. Each
//! shard count above 1 is its **own deterministic universe**: per-shard
//! RNG streams sample a different (equally valid) stochastic trajectory
//! than the serial stream, so outputs differ *across* shard counts while
//! the physics — staleness rates, latency distributions, traffic — stays
//! in family. What is pinned instead is that within a shard count the
//! output is a pure function of the seed: **thread count is a pure
//! performance knob**, because batches produce into per-shard sinks and
//! the barrier folds them in fixed shard order regardless of which worker
//! ran what. `crates/cluster/tests/golden_determinism.rs` captures one
//! golden digest per shard count (re-capture with `GOLDEN_PRINT=1` when
//! the simulation's outputs legitimately change) and
//! `crates/cluster/tests/sharded_determinism.rs` asserts byte-identical
//! fingerprints at 1/2/4/8 worker threads for shards ∈ {1, 2, 4},
//! including a node crashing mid-window, a partition severing two shards
//! and ordered scans straddling a shard boundary (see `concord_sim::shard`
//! for the full design notes). `exp_throughput --shards <n> --threads <m>`
//! measures the engine cost and prints greppable `SHARDED_DATAPOINT`
//! lines for the nightly CI shards × threads matrix; a *plain*
//! `exp_throughput` invocation additionally runs the `sharded` substrate —
//! the open-loop bulk workload at shards 1, 2 and 4 in one invocation —
//! printing one `BARRIER_DATAPOINT` line per shard count with the
//! window/fold/elision/fast-forward counters next to the throughput, so
//! nightly CI charts how much synchronization each run actually paid for.
//! One honesty note on the numbers: the PR containers are single-core, so
//! every recorded shards > 1 figure measures pure engine *overhead*
//! (windowing + barrier bookkeeping on one core), not parallel speedup —
//! the nightly matrix on a multi-core runner is where the speedup curve
//! comes from.
//!
//! ## The resilience layer: `--hedge <ms>`, `--selection dynamic`, `--backoff`
//!
//! Gray failures — a node serving 10× slow while still answering — never
//! trip fault detection; only the tail latency shows them. The fault model
//! covers them with `SlowNode(node, factor)`/`RestoreNode(node)` (plus
//! whole-datacenter `DcDown`/`DcUp`), which multiply the node's *sampled*
//! service and response delays post-draw — the RNG stream is untouched, so
//! a slow window perturbs nothing downstream of itself. The tail-tolerant
//! client machinery that answers them
//! (`concord_cluster::ResilienceConfig`, `ClusterConfig::read_selection`)
//! has three independent knobs, each off by default:
//!
//! * **Hedged reads** (`--hedge <ms>`): every point-read attempt arms one
//!   speculative trigger on the coordinator's timer lane. If the read is
//!   still pending when it fires, the coordinator duplicates the request to
//!   the best *unused* replica (distance + health ranked; open-breaker
//!   nodes rank last as hedge of last resort; scans and reads that already
//!   contacted every replica have no target and hedge nothing). First
//!   response wins; the loser's response misses the op slab's generation
//!   check exactly like any straggler, so hedged ops can neither leak slab
//!   slots nor double-count. Hedge duplicates are metered
//!   (`hedged_requests`, `hedge_wins`, per-link-class `hedge_traffic` /
//!   `hedge_bytes` in the `RunReport`) and their bytes flow into the
//!   billable traffic totals — the bill prices the tail insurance.
//! * **Backoff retries** (`--backoff`): `retry_on_timeout` re-issues wait
//!   an exponentially growing, deterministically jittered delay
//!   (`backoff_base·2^attempt` capped at `backoff_cap`, jitter drawn from
//!   the owning shard's RNG stream — one draw per backed-off retry) instead
//!   of re-issuing inline. The delays are heterogeneous by construction, so
//!   they route through the event queue's timer wheel, which cannot reorder
//!   delivery (property-tested in `concord-sim` with exactly this shape).
//!   Counted in `backoff_retries` alongside the existing `retries`.
//! * **Health-aware replica selection** (`--selection dynamic`, also
//!   `closest|random`): the coordinator side keeps a per-node EWMA of the
//!   observed response latency *excess* over the expected round trip
//!   (distance-normalized, so a far coordinator's 26 ms observation does
//!   not poison a node for its neighbors) plus a circuit breaker —
//!   **closed** → `breaker_failures` consecutive read-timeout strikes open
//!   it → **open** demotes the node behind every healthy candidate for
//!   `breaker_cooldown` → **half-open** admits one probe, which either
//!   closes it (any response resets the strike count) or re-opens it.
//!   Breaker flips are counted in `breaker_opens`. Writes never strike: a
//!   write timeout implicates the consistency level, not one replica.
//!
//! With all three off (the default) the layer adds **zero** events, zero
//! RNG draws and zero meters — every pre-existing golden digest is
//! byte-identical, which is the same contract the repair plane and the
//! partitioner hold. Resilience-**on** runs are their own sampled
//! universes (hedge draws shift the shard RNG stream), pinned exactly like
//! everything else: `golden_resilience_run` captures one digest — hedge
//! and breaker counters included — per shard count ∈ {1, 2, 4}, and the
//! gray-failure scenario in `crates/cluster/tests/sharded_determinism.rs`
//! asserts byte-identical fingerprints at 1/2/4/8 worker threads.
//! `exp_faults` accepts all three flags, prints per-policy hedge/backoff/
//! breaker columns when any is set, and always runs a self-calibrated
//! gray-failure leg (one node 10× slow mid-run, hedging off vs on vs the
//! full layer) emitting a greppable `HEDGE_DATAPOINT` line;
//! `examples/fault_injection.rs` walks the same comparison with prose.
//! Serde backcompat: pre-resilience `RunReport` JSON and fault scripts
//! parse unchanged (`#[serde(default)]` on every new field; pinned by the
//! backcompat tests in `concord-core`).

pub mod sweep;

pub use sweep::{
    parse_arrival, render_summary_table, run_grid, run_timed_grid, Harness, PolicySummary,
    SeedStat, Sweep, SweepResults,
};

use concord_workload::WorkloadConfig;

/// Workload/cluster scale parsed from the command line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Fraction of the paper's operation/record counts to run.
    pub workload: f64,
    /// Fraction of the paper's node counts to simulate.
    pub cluster: f64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            workload: 0.002,
            cluster: 0.25,
        }
    }
}

/// Parse `--scale <f>` and `--cluster-scale <f>` from raw process arguments;
/// everything else is left to the individual binary.
pub fn parse_scale(args: &[String]) -> Scale {
    let mut scale = Scale::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                if let Some(v) = it.next().and_then(|s| s.parse::<f64>().ok()) {
                    scale.workload = v.clamp(1e-5, 1.0);
                }
            }
            "--cluster-scale" => {
                if let Some(v) = it.next().and_then(|s| s.parse::<f64>().ok()) {
                    scale.cluster = v.clamp(0.01, 1.0);
                }
            }
            _ => {}
        }
    }
    scale
}

/// Parse a `--platform <name>` argument (defaults to `g5k`).
pub fn parse_platform(args: &[String]) -> String {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--platform" {
            if let Some(v) = it.next() {
                return v.clone();
            }
        }
    }
    "g5k".to_string()
}

/// Make a paper workload lighter-weight for simulation: single 1 KB field
/// (the record size YCSB uses by default) instead of ten 100 B fields.
pub fn slim(mut cfg: WorkloadConfig) -> WorkloadConfig {
    cfg.field_count = 1;
    cfg.field_length = 1_000;
    cfg
}

/// Print a labelled paper-vs-measured comparison line.
pub fn compare_line(label: &str, paper: &str, measured: String) {
    println!("  {label:<58} paper: {paper:<22} measured: {measured}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_defaults_and_overrides() {
        assert_eq!(parse_scale(&[]), Scale::default());
        let args: Vec<String> = ["--scale", "0.01", "--cluster-scale", "0.5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let s = parse_scale(&args);
        assert!((s.workload - 0.01).abs() < 1e-12);
        assert!((s.cluster - 0.5).abs() < 1e-12);
        // Bad values fall back to defaults / clamp.
        let args: Vec<String> = ["--scale", "oops"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_scale(&args).workload, Scale::default().workload);
    }

    #[test]
    fn platform_parsing() {
        assert_eq!(parse_platform(&[]), "g5k");
        let args: Vec<String> = ["--platform", "ec2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_platform(&args), "ec2");
    }

    #[test]
    fn slim_keeps_record_size_at_1kb() {
        let cfg = slim(concord_workload::presets::ycsb_a());
        assert_eq!(cfg.record_size(), 1_000);
        assert!(cfg.validate().is_ok());
    }
}
