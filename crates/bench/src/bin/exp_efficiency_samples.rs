//! EXP-B2a — validating the consistency-cost efficiency metric (§IV-B).
//!
//! The paper collects samples of the metric while *"running the same workload
//! with different access patterns and different consistency levels"* and
//! observes that *"the most efficient consistency levels are the ones that
//! provide a staleness rate smaller than 20%"*. This binary reproduces that
//! sampling through the shared [`Sweep`] harness: three access patterns
//! (read-heavy, balanced heavy read-update, write-heavy) × every consistency
//! level, each sample reporting its measured staleness, its bill and its
//! efficiency relative to the strongest level.
//!
//! ```text
//! cargo run --release -p concord-bench --bin exp_efficiency_samples
//! ```

use concord::prelude::*;
use concord::PolicySpec;
use concord_bench::{render_summary_table, slim, Harness, Sweep};
use concord_cost::consistency_cost_efficiency;
use concord_workload::RequestDistribution;

fn main() {
    let harness = Harness::from_env();
    let platform = harness.apply_shards(
        harness.apply_partitioner(concord::platforms::grid5000_cost(harness.scale.cluster)),
    );
    println!("EXP-B2a: platform = {}\n", platform.name);

    let base = slim(presets::cost_workload(harness.scale.workload));
    let patterns: Vec<(&str, WorkloadConfig)> = vec![
        (
            "read-heavy (95/5, zipfian)",
            WorkloadConfig {
                read_proportion: 0.95,
                update_proportion: 0.05,
                ..base.clone()
            },
        ),
        (
            "heavy read-update (50/50, zipfian)",
            WorkloadConfig {
                read_proportion: 0.5,
                update_proportion: 0.5,
                ..base.clone()
            },
        ),
        (
            "write-heavy (25/75, latest)",
            WorkloadConfig {
                read_proportion: 0.25,
                update_proportion: 0.75,
                request_distribution: RequestDistribution::Latest,
                ..base.clone()
            },
        ),
    ];

    let rf = platform.cluster.replication_factor;
    println!(
        "{:<36} {:<14} {:>10} {:>12} {:>12}",
        "access pattern", "level", "stale %", "rel. cost", "efficiency"
    );

    let specs: Vec<PolicySpec> = (1..=rf).map(PolicySpec::FixedReadReplicas).collect();
    harness.forbid_workload_override("this experiment compares its own fixed access patterns");
    let seeds = harness.seeds(17);
    let mut efficient_samples = 0usize;
    let mut efficient_below_20 = 0usize;
    for (name, workload) in patterns {
        let experiment = Experiment::new(platform.clone(), workload)
            .with_clients(32)
            .with_adaptation_interval(SimDuration::from_millis(250))
            .with_seed(seeds[0]);
        let experiment = harness.apply_arrival(experiment);
        let results = Sweep::new(experiment)
            .with_policies(&specs)
            .with_seeds(&seeds)
            .run();
        let reports = results.primary();
        let reference = reports.last().unwrap().total_cost_usd();

        let mut best_idx = 0usize;
        let mut best_eff = f64::NEG_INFINITY;
        for (i, report) in reports.iter().enumerate() {
            let sample = consistency_cost_efficiency(
                report.stale_read_rate,
                report.total_cost_usd(),
                reference,
            );
            if sample.efficiency > best_eff {
                best_eff = sample.efficiency;
                best_idx = i;
            }
            println!(
                "{:<36} {:<14} {:>10.2} {:>12.3} {:>12.3}",
                name,
                report.policy,
                report.stale_read_rate * 100.0,
                report.total_cost_usd() / reference,
                sample.efficiency
            );
        }
        let best = &reports[best_idx];
        efficient_samples += 1;
        if best.stale_read_rate < 0.20 {
            efficient_below_20 += 1;
        }
        println!(
            "{:<36} → most efficient: {} (stale {:.2}%)\n",
            "",
            best.policy,
            best.stale_read_rate * 100.0
        );
        if results.seeds.len() > 1 {
            println!("{}", render_summary_table(name, &results.summaries()));
        }
    }

    println!(
        "paper claim: the most efficient levels provide a staleness rate smaller than 20% — \
         measured: {efficient_below_20}/{efficient_samples} access patterns"
    );
}
