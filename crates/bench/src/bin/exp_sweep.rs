//! Parallel sweep benchmark: wall-clock of a paper-style multi-seed policy
//! sweep at one thread vs. a full pool, plus the determinism check that the
//! per-seed reports are **byte-identical** across thread counts.
//!
//! This is the measurement behind `BENCH_parallel.json` at the workspace
//! root and the nightly CI sweep smoke job:
//!
//! ```text
//! cargo run --release -p concord-bench --bin exp_sweep -- --scale 0.01 --seeds 8
//! cargo run --release -p concord-bench --bin exp_sweep -- --seeds 8 --par-threads 4 --out BENCH_parallel.json
//! ```
//!
//! The sweep grid is the EXP-A1 comparison (eventual / strong / two Harmony
//! tolerances) × `--seeds` seeds on the Grid'5000 platform. Every point owns
//! its cluster and runtime, so the grid is embarrassingly parallel; the
//! speedup on an N-core machine approaches min(N, points) once points are
//! large enough to amortize pool startup. The JSON records both timings, the
//! speedup, the machine's core count and whether the reports matched.

use concord::prelude::*;
use concord::PolicySpec;
use concord_bench::{render_summary_table, slim, Harness, Sweep};
use std::time::Instant;

fn main() {
    let harness = Harness::from_env();
    let out_path = harness
        .args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| harness.args.get(i + 1))
        .cloned();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let par_threads: usize = harness
        .args
        .iter()
        .position(|a| a == "--par-threads")
        .and_then(|i| harness.args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(cores)
        .max(1);

    let platform = harness.apply_shards(
        harness.apply_partitioner(concord::platforms::grid5000_harmony(harness.scale.cluster)),
    );
    let workload = harness.apply_workload(slim(presets::harmony_grid5000_workload(
        harness.scale.workload,
    )));
    // Default to 8 seeds only when `--seeds` is absent (this binary exists
    // to exercise multi-seed parallelism); an explicit `--seeds 1` or a
    // standalone `--seed-base` is honored as given.
    let seeds: Vec<u64> = if harness.args.iter().any(|a| a == "--seeds") {
        harness.seeds(2013)
    } else {
        let base = harness.seed_base.unwrap_or(2013);
        (base..base + 8).collect()
    };
    println!(
        "exp_sweep: platform = {}, {} records, {} operations, {} seeds, {} cores",
        platform.name,
        workload.record_count,
        workload.operation_count,
        seeds.len(),
        cores
    );

    let experiment = Experiment::new(platform, workload)
        .with_clients(32)
        .with_adaptation_interval(SimDuration::from_millis(100))
        .with_seed(seeds[0]);
    let experiment = harness.apply_arrival(experiment);
    let sweep = Sweep::new(experiment)
        .with_policies(&[
            PolicySpec::Eventual,
            PolicySpec::Strong,
            PolicySpec::Harmony { tolerance: 0.20 },
            PolicySpec::Harmony { tolerance: 0.40 },
        ])
        .with_seeds(&seeds);
    let points = sweep.len();

    let timed_run = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool construction cannot fail");
        let t0 = Instant::now();
        let results = pool.install(|| sweep.run());
        (t0.elapsed().as_secs_f64(), results)
    };

    eprintln!("running {points} points sequentially (1 thread)…");
    let (seq_secs, seq_results) = timed_run(1);
    eprintln!("  {seq_secs:.3} s");
    eprintln!("running {points} points on {par_threads} threads…");
    let (par_secs, par_results) = timed_run(par_threads);
    eprintln!("  {par_secs:.3} s");

    // The determinism contract: per-seed reports byte-identical across
    // thread counts (serialized form compared, so every field counts).
    let identical = seq_results
        .reports
        .iter()
        .zip(&par_results.reports)
        .all(|(a, b)| a.to_json() == b.to_json());
    assert!(
        identical,
        "parallel sweep diverged from sequential execution"
    );

    println!(
        "{}",
        render_summary_table("exp_sweep (multi-seed)", &par_results.summaries())
    );
    let speedup = seq_secs / par_secs;
    println!(
        "sweep wall-clock: {seq_secs:.3} s sequential → {par_secs:.3} s on {par_threads} threads \
         ({speedup:.2}× speedup, {cores} cores available), per-seed reports byte-identical: {identical}"
    );

    let json = format!(
        "{{\"scale\":{},\"points\":{points},\"seeds\":{},\"cores\":{cores},\
         \"sequential_secs\":{seq_secs:.3},\"parallel_threads\":{par_threads},\
         \"parallel_secs\":{par_secs:.3},\"speedup\":{speedup:.2},\
         \"per_seed_reports_identical\":{identical}}}",
        harness.scale.workload,
        seeds.len(),
    );
    println!("{json}");
    // Machine-readable multicore datapoint: greppable from CI logs and
    // artifacts, so the "record the ≥3× multicore speedup" roadmap item can
    // be closed from the nightly job's output (the PR measurement
    // containers expose a single core, where speedup is meaningless).
    println!("MULTICORE_DATAPOINT {{\"threads\":{par_threads},\"speedup\":{speedup:.2}}}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
            eprintln!("error: cannot write --out file {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
