//! FIG1 — the stale-read situation of the paper's Figure 1.
//!
//! The figure defines *when* a read may be stale: when it starts while the
//! last write is still propagating to the other replicas. This binary
//! reproduces the model quantitatively: for a sweep of write rates and read
//! consistency levels it prints the stale-read probability predicted by the
//! analytic model and cross-validates it against the Monte-Carlo simulator
//! of the same situation. The 25-point grid runs through the shared
//! [`run_grid`] harness — every point is an independent estimator pair, so
//! the grid parallelizes across the pool while the printed table stays in
//! grid order.
//!
//! ```text
//! cargo run --release -p concord-bench --bin exp_fig1
//! cargo run --release -p concord-bench --bin exp_fig1 -- --threads 4
//! ```

use concord_bench::{run_grid, Harness};
use concord_staleness::{
    AnalyticEstimator, MonteCarloEstimator, StaleReadEstimator, StalenessParams,
};

fn main() {
    let _harness = Harness::from_env(); // applies --threads to the pool
    _harness.forbid_workload_override("the estimator grid has no YCSB workload");
    _harness.forbid_arrival_override("the estimator grid has no client arrivals");
    _harness.forbid_partitioner_override("the estimator grid builds no cluster");
    let analytic = AnalyticEstimator::new();
    let montecarlo = MonteCarloEstimator::new(150_000, 42);

    println!("FIG1: probability of a stale read vs write rate and read level");
    println!("      (RF = 5, write level ONE, T = 1 ms, Tp = 40 ms)\n");
    println!(
        "{:>12} {:>6}  {:>12} {:>12} {:>10}",
        "writes/s", "R", "analytic", "monte-carlo", "|delta|"
    );

    let write_rates = [5.0, 25.0, 100.0, 400.0, 1_600.0];
    let points: Vec<(f64, u32)> = write_rates
        .iter()
        .flat_map(|&w| (1..=5u32).map(move |r| (w, r)))
        .collect();
    let estimates = run_grid(points.clone(), |(write_rate, read_level)| {
        let params = StalenessParams::basic(5, read_level, 1, 1_000.0, write_rate, 1.0, 40.0);
        let a = analytic.estimate(&params).stale_read_probability;
        let m = montecarlo.estimate(&params).stale_read_probability;
        (a, m)
    });

    let mut worst_gap = 0.0f64;
    for ((write_rate, read_level), (a, m)) in points.iter().zip(&estimates) {
        let gap = (a - m).abs();
        worst_gap = worst_gap.max(gap);
        println!(
            "{:>12.0} {:>6}  {:>12.4} {:>12.4} {:>10.4}",
            write_rate, read_level, a, m, gap
        );
        if *read_level == 5 {
            println!();
        }
    }
    println!("largest analytic vs Monte-Carlo gap: {worst_gap:.4}");
    println!(
        "\nShape checks (the paper's Figure 1 narrative):\n\
         * the probability grows with the write rate (longer occupancy of the window);\n\
         * it shrinks as more replicas are involved in the read;\n\
         * it is exactly zero once R + W > N (strict quorum)."
    );
}
