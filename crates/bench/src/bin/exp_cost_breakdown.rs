//! EXP-B1 — consistency impact on monetary cost (§IV-B, first experiment).
//!
//! Sweeps the static consistency levels ONE → ALL on the cost platform
//! (RF 5, two availability zones / two Grid'5000 sites) running the paper's
//! heavy read-update workload through the shared [`Sweep`] harness, and
//! prints the three-part bill decomposition (instances / storage / network),
//! the cost reduction of each level relative to the strongest one, and the
//! fraction of up-to-date reads.
//!
//! ```text
//! cargo run --release -p concord-bench --bin exp_cost_breakdown
//! cargo run --release -p concord-bench --bin exp_cost_breakdown -- --seeds 8 --threads 4
//! ```

use concord::prelude::*;
use concord::PolicySpec;
use concord_bench::{compare_line, render_summary_table, slim, Harness, Sweep};

fn main() {
    let harness = Harness::from_env();
    let platform = harness.cost_platform();
    let workload = harness.apply_workload(slim(presets::cost_workload(harness.scale.workload)));
    harness.banner("EXP-B1", &platform, &workload);

    let rf = platform.cluster.replication_factor;
    let experiment = Experiment::new(platform, workload)
        .with_clients(32)
        .with_adaptation_interval(SimDuration::from_millis(250))
        .with_seed(2013);
    let experiment = harness.apply_arrival(experiment);

    // The paper sweeps Cassandra's consistency level for both reads and
    // writes (ONE … ALL), so the symmetric variant is used here.
    let specs: Vec<PolicySpec> = (1..=rf).map(PolicySpec::SymmetricLevel).collect();
    let results = Sweep::new(experiment)
        .with_policies(&specs)
        .with_seeds(&harness.seeds(2013))
        .run();
    let reports = results.primary();
    println!("{}", render_table("EXP-B1: per-level sweep", &reports));
    if results.seeds.len() > 1 {
        println!("{}", render_summary_table("EXP-B1", &results.summaries()));
    }

    println!("== bill decomposition (the paper's three parts) ==");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "level", "instances $", "storage $", "network $", "total $", "vs ALL", "fresh reads"
    );
    let all_cost = reports.last().unwrap().total_cost_usd();
    for report in &reports {
        let bill = report.bill.expect("pricing configured");
        println!(
            "{:<16} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>11.1}% {:>11.1}%",
            report.policy,
            bill.instances_usd,
            bill.storage_usd,
            bill.network_usd,
            bill.total(),
            (bill.total() / all_cost - 1.0) * 100.0,
            report.fresh_read_fraction() * 100.0,
        );
    }

    // Energy extension (the paper's §V future-work direction): same linear
    // power model applied to every level's resource usage.
    println!("\n== energy (future-work extension, commodity 2013 servers) ==");
    println!(
        "{:<16} {:>14} {:>14} {:>14}",
        "level", "utilization %", "energy (Wh)", "J per op"
    );
    let power = concord_cost::PowerModel::commodity_2013();
    for report in &reports {
        let utilization = concord_cost::estimate_utilization(&report.usage, 0.3);
        let energy = concord_cost::energy_of_run(&power, &report.usage, utilization);
        println!(
            "{:<16} {:>14.1} {:>14.3} {:>14.3}",
            report.policy,
            utilization * 100.0,
            energy.total_energy_wh,
            energy.joules_per_op(report.total_ops).unwrap_or(0.0)
        );
    }

    let one = &reports[0];
    let quorum = &reports[(rf / 2) as usize]; // rf/2+1 replicas ⇒ index rf/2
    let all = reports.last().unwrap();
    println!("\npaper-vs-measured:");
    compare_line(
        "total cost reduction, weakest level vs strongest",
        "down to −48%",
        format!(
            "{:+.0}%",
            (one.total_cost_usd() / all.total_cost_usd() - 1.0) * 100.0
        ),
    );
    compare_line(
        "up-to-date reads at level ONE",
        "only 21% fresh",
        format!("{:.0}% fresh", one.fresh_read_fraction() * 100.0),
    );
    compare_line(
        "QUORUM cost vs strong consistency (ALL)",
        "−13%",
        format!(
            "{:+.0}%",
            (quorum.total_cost_usd() / all.total_cost_usd() - 1.0) * 100.0
        ),
    );
    compare_line(
        "QUORUM always returns an up-to-date replica",
        "holds",
        format!("{} stale reads", quorum.stale_reads),
    );
}
