//! EXP-A1 / EXP-A2 — Harmony performance/staleness evaluation (§IV-A).
//!
//! Reproduces the paper's comparison of Harmony (two tolerated stale-read
//! rates per platform) against static eventual and strong consistency on the
//! Grid'5000 deployment (84 nodes, 2 clusters, 3 M ops — EXP-A1) and the EC2
//! deployment (20 VMs, 5 M ops — EXP-A2), through the shared [`Sweep`]
//! harness: pass `--seeds 8` for a multi-seed sweep with confidence
//! intervals, `--threads N` to size the pool.
//!
//! ```text
//! cargo run --release -p concord-bench --bin exp_harmony -- --platform g5k
//! cargo run --release -p concord-bench --bin exp_harmony -- --platform ec2
//! cargo run --release -p concord-bench --bin exp_harmony -- --scale 0.01 --seeds 8 --threads 4
//! ```

use concord::prelude::*;
use concord::PolicySpec;
use concord_bench::{compare_line, render_summary_table, slim, Harness, Sweep};

fn main() {
    let harness = Harness::from_env();

    // Platform + workload + tolerances per the paper: Grid'5000 uses 20% and
    // 40%, EC2 uses 40% and 60%.
    let (platform, workload, tolerances, exp_id) = if harness.platform.starts_with("ec2") {
        (
            harness.harmony_platform(),
            slim(presets::harmony_ec2_workload(harness.scale.workload)),
            (0.40, 0.60),
            "EXP-A2 (EC2)",
        )
    } else {
        (
            harness.harmony_platform(),
            slim(presets::harmony_grid5000_workload(harness.scale.workload)),
            (0.20, 0.40),
            "EXP-A1 (Grid'5000)",
        )
    };
    // `--workload d` / `--workload e` swap in the latest-distribution and
    // short-scan YCSB mixes at the same scale.
    let workload = harness.apply_workload(workload);
    harness.banner(exp_id, &platform, &workload);

    let experiment = Experiment::new(platform, workload)
        .with_clients(32)
        .with_adaptation_interval(SimDuration::from_millis(100))
        .with_seed(2013);
    let experiment = harness.apply_arrival(experiment);

    let results = Sweep::new(experiment)
        .with_policies(&[
            PolicySpec::Eventual,
            PolicySpec::Strong,
            PolicySpec::Harmony {
                tolerance: tolerances.0,
            },
            PolicySpec::Harmony {
                tolerance: tolerances.1,
            },
        ])
        .with_seeds(&harness.seeds(2013))
        .run();
    let reports = results.primary();
    println!("{}", render_table(exp_id, &reports));
    if results.seeds.len() > 1 {
        println!("{}", render_summary_table(exp_id, &results.summaries()));
    }

    let eventual = &reports[0];
    let strong = &reports[1];
    let harmony_tight = &reports[2];
    let harmony_loose = &reports[3];

    println!("paper-vs-measured:");
    compare_line(
        "stale reads, Harmony vs eventual consistency",
        "~80% fewer",
        format!(
            "{:.0}% fewer ({:.2}% vs {:.2}%)",
            (1.0 - harmony_tight.stale_read_rate / eventual.stale_read_rate.max(1e-9)) * 100.0,
            harmony_tight.stale_read_rate * 100.0,
            eventual.stale_read_rate * 100.0
        ),
    );
    compare_line(
        "throughput, Harmony vs static strong consistency",
        "up to +45%",
        format!(
            "{:+.0}% (loose tolerance) / {:+.0}% (tight tolerance)",
            (harmony_loose.throughput_ops_per_sec / strong.throughput_ops_per_sec - 1.0) * 100.0,
            (harmony_tight.throughput_ops_per_sec / strong.throughput_ops_per_sec - 1.0) * 100.0
        ),
    );
    compare_line(
        "tolerated stale-read rate is never violated",
        "holds",
        format!(
            "harmony({:.0}%) measured {:.2}%, harmony({:.0}%) measured {:.2}%",
            tolerances.0 * 100.0,
            harmony_tight.stale_read_rate * 100.0,
            tolerances.1 * 100.0,
            harmony_loose.stale_read_rate * 100.0
        ),
    );
    println!(
        "\nHarmony adaptation trace (tight tolerance): {} level changes over {:.1} s",
        harmony_tight.level_timeline.len(),
        harmony_tight.makespan.as_secs_f64()
    );
}
