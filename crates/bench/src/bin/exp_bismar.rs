//! EXP-B2b — Bismar evaluation (§IV-B, second experiment).
//!
//! Compares Bismar against the static consistency levels on the cost platform
//! (RF 5, two datacenters) through the shared [`Sweep`] harness. The paper's
//! findings to reproduce in shape: only level ONE costs less than Bismar, but
//! it tolerates up to 61% stale reads; Bismar cuts the bill by up to 31%
//! compared to the static QUORUM level while keeping stale reads around 3.5%.
//!
//! ```text
//! cargo run --release -p concord-bench --bin exp_bismar
//! cargo run --release -p concord-bench --bin exp_bismar -- --seeds 8 --threads 4
//! ```

use concord::prelude::*;
use concord::PolicySpec;
use concord_bench::{compare_line, render_summary_table, slim, Harness, Sweep};

fn main() {
    let harness = Harness::from_env();
    let platform = harness.cost_platform();
    let workload = harness.apply_workload(slim(presets::cost_workload(harness.scale.workload)));
    harness.banner("EXP-B2b", &platform, &workload);

    let experiment = Experiment::new(platform, workload)
        .with_clients(32)
        .with_adaptation_interval(SimDuration::from_millis(250))
        .with_seed(2013);
    let experiment = harness.apply_arrival(experiment);

    let results = Sweep::new(experiment)
        .with_policies(&[
            PolicySpec::FixedReadReplicas(1),
            PolicySpec::Quorum,
            PolicySpec::Strong,
            PolicySpec::Bismar,
        ])
        .with_seeds(&harness.seeds(2013))
        .run();
    let reports = results.primary();
    println!(
        "{}",
        render_table("EXP-B2b: Bismar vs static levels", &reports)
    );
    if results.seeds.len() > 1 {
        println!("{}", render_summary_table("EXP-B2b", &results.summaries()));
    }

    let one = &reports[0];
    let quorum = &reports[1];
    let bismar = &reports[3];

    println!("paper-vs-measured:");
    compare_line(
        "levels cheaper than Bismar",
        "only ONE",
        reports
            .iter()
            .filter(|r| r.policy != "bismar" && r.total_cost_usd() < bismar.total_cost_usd())
            .map(|r| r.policy.clone())
            .collect::<Vec<_>>()
            .join(", "),
    );
    compare_line(
        "stale reads tolerated by level ONE",
        "up to 61%",
        format!("{:.1}%", one.stale_read_rate * 100.0),
    );
    compare_line(
        "Bismar cost vs static QUORUM",
        "up to −31%",
        format!(
            "{:+.1}%",
            (bismar.total_cost_usd() / quorum.total_cost_usd() - 1.0) * 100.0
        ),
    );
    compare_line(
        "Bismar stale reads",
        "≈3.5%",
        format!("{:.2}%", bismar.stale_read_rate * 100.0),
    );
    println!(
        "\nBismar level timeline: {} changes, mean read fan-out {:.2} replicas",
        bismar.level_timeline.len(),
        bismar.mean_read_replicas
    );
}
