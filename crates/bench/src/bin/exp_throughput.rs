//! Hot-path throughput benchmark: how fast does the simulator itself run?
//!
//! This binary measures the *wall-clock* cost of the discrete-event engine
//! and the cluster simulator — events per second and nanoseconds per
//! simulated client operation — on four substrates:
//!
//! * `event_queue`: schedule + pop of randomly-timed events through the raw
//!   [`concord_sim::EventQueue`] (the engine floor);
//! * `store`: raw [`concord_cluster::ReplicaStore`] point reads / versioned
//!   writes / short range scans (the storage floor — the paged direct-index
//!   table in isolation, for before/after comparison of storage-layer
//!   changes);
//! * `cluster_substrate`: the full Cassandra-like cluster hot path (an
//!   8-node RF-3 LAN cluster under a 50/50 read/write closed workload),
//!   which is what paper-scale runs pay per operation;
//! * `cluster_bulk`: the same cluster driven **open-loop** — a sorted
//!   arrival schedule from `CoreWorkload::timed_ops` bulk-loaded through
//!   [`Cluster::submit_batch`], so client arrivals ride the event queue's
//!   O(1) bulk FIFO lane instead of paying one heap push each;
//! * `sharded` (plain invocations only, i.e. without `--shards`): the
//!   bulk workload re-run at shards 1, 2 and 4 **in one invocation** —
//!   the pure engine-overhead curve — printing one greppable
//!   `BARRIER_DATAPOINT {json}` line per shard count with the window /
//!   fold / elision / fast-forward counters next to the throughput, so
//!   nightly CI can chart how much synchronization each run actually
//!   paid for.
//!
//! The measurement grid runs through the shared `run_timed_grid` harness
//! (points run one at a time — wall-clock points must not compete with each
//! other for cores). `--shards N` runs both cluster substrates on the
//! conservative-PDES sharded engine, with each window's shard batches
//! dispatched on the `--threads`-sized pool, and prints one greppable
//! `SHARDED_DATAPOINT` line per cluster substrate carrying both knobs, so
//! the nightly shards × threads matrix can plot the wall-clock curve.
//!
//! ```text
//! cargo run --release -p concord-bench --bin exp_throughput -- --scale 0.05
//! cargo run --release -p concord-bench --bin exp_throughput -- --scale 0.05 --out BENCH.json
//! ```
//!
//! `--scale 1.0` sizes the cluster scenarios at 2 M operations (the paper's
//! Grid'5000 op count per run); the default (0.002, from `parse_scale`)
//! keeps smoke runs fast, and perf comparisons should use `--scale 0.25
//! --repeat 5`. Results are printed as one JSON measurement object;
//! `--out FILE` additionally writes that object to a file. The committed
//! `BENCH_hotpath.json` at the workspace root is assembled by hand from two
//! such runs (before/after, same release profile) — see its `methodology`
//! field; it is a record to compare against, not a file this binary
//! overwrites.

use concord_bench::{run_timed_grid, Harness};
use concord_cluster::{
    BatchOp, Cluster, ClusterConfig, ConsistencyLevel, Partitioner, ReplicaStore,
};
use concord_sim::{EventQueue, ShardMetrics, SimDuration, SimRng, SimTime};
use concord_workload::{ArrivalProcess, CoreWorkload, OperationType, WorkloadConfig};
use std::time::Instant;

/// One measured substrate.
struct Measurement {
    name: &'static str,
    ops: u64,
    events: u64,
    elapsed_secs: f64,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed_secs
    }

    fn ns_per_op(&self) -> f64 {
        self.elapsed_secs * 1e9 / self.ops as f64
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"ops\":{},\"events\":{},\"elapsed_secs\":{:.6},\
             \"events_per_sec\":{:.0},\"ns_per_op\":{:.1}}}",
            self.name,
            self.ops,
            self.events,
            self.elapsed_secs,
            self.events_per_sec(),
            self.ns_per_op()
        )
    }
}

/// Raw event-queue schedule+pop throughput (no cluster logic).
fn bench_event_queue(rounds: u64) -> Measurement {
    const EVENTS_PER_ROUND: u64 = 100_000;
    let t0 = Instant::now();
    let mut checksum = 0u64;
    for round in 0..rounds {
        let mut rng = SimRng::new(round + 1);
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..EVENTS_PER_ROUND {
            q.schedule_at(SimTime::from_micros(rng.next_bounded(1_000_000)), i);
        }
        while let Some((_, v)) = q.pop() {
            checksum = checksum.wrapping_add(v);
        }
    }
    std::hint::black_box(checksum);
    Measurement {
        name: "event_queue",
        ops: rounds * EVENTS_PER_ROUND,
        events: rounds * EVENTS_PER_ROUND,
        elapsed_secs: t0.elapsed().as_secs_f64(),
    }
}

/// Raw [`ReplicaStore`] read/write loop: the storage-layer floor, measuring
/// the paged direct-index table in isolation (no events, no network). The
/// op mix is 50/50 point read / versioned write over a dense key space with
/// a periodic short range scan, driven by `SimRng` so before/after builds
/// replay the identical key sequence.
fn bench_store(total_ops: u64) -> Measurement {
    const KEYS: u64 = 100_000;
    let mut store = ReplicaStore::new();
    for k in 0..KEYS {
        store.preload(
            concord_cluster::Key(k),
            concord_cluster::Version(k + 1),
            1_000,
        );
    }
    let mut rng = SimRng::new(7);
    let mut version = KEYS;
    let mut checksum = 0u64;
    let t0 = Instant::now();
    for i in 0..total_ops {
        let key = concord_cluster::Key(rng.next_bounded(KEYS));
        match i % 20 {
            0 => {
                // One short scan per 20 ops (the YCSB-E shape).
                let r = store.read_range(key, 10);
                checksum = checksum
                    .wrapping_add(r.bytes)
                    .wrapping_add(r.records as u64);
            }
            n if n % 2 == 1 => {
                version += 1;
                store.apply_write(
                    key,
                    concord_cluster::Version(version),
                    1_000,
                    SimTime::from_micros(i),
                );
            }
            _ => {
                if let Some(v) = store.read(key) {
                    checksum = checksum.wrapping_add(v.version.0);
                }
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    std::hint::black_box(checksum);
    std::hint::black_box(store.bytes_stored());
    Measurement {
        name: "store",
        ops: total_ops,
        events: store.read_ops() + store.write_ops(),
        elapsed_secs: elapsed,
    }
}

fn micro_cluster(partitioner: Partitioner, shards: u32) -> (Cluster, u64) {
    const KEYS: u64 = 500;
    let mut cfg = ClusterConfig::lan_test(8, 3);
    cfg.partitioner = partitioner;
    cfg.shards = shards;
    let mut cluster = Cluster::new(cfg, 11);
    cluster.load_records((0..KEYS).map(|k| (k, 1_000)));
    cluster.set_levels(ConsistencyLevel::One, ConsistencyLevel::One);
    (cluster, KEYS)
}

/// The full cluster hot path: closed-loop windows over the micro cluster.
fn bench_cluster(total_ops: u64, partitioner: Partitioner, shards: u32) -> Measurement {
    let (mut cluster, keys) = micro_cluster(partitioner, shards);

    // Submit in windows so the pending-op tables stay at realistic sizes
    // (a closed loop, like the runtime) rather than pre-queueing millions.
    const WINDOW: u64 = 10_000;
    let mut submitted = 0u64;
    let mut completed = 0u64;
    let t0 = Instant::now();
    let mut at = SimTime::ZERO;
    while completed < total_ops {
        while submitted < total_ops && submitted < completed + WINDOW {
            at += SimDuration::from_micros(100);
            if submitted.is_multiple_of(2) {
                cluster.submit_write_at(submitted % keys, 1_000, at);
            } else {
                cluster.submit_read_at(submitted % keys, at);
            }
            submitted += 1;
        }
        completed += cluster.run_to_completion(u64::MAX).len() as u64;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    std::hint::black_box(cluster.metrics().stale_read_rate());
    Measurement {
        name: "cluster_substrate",
        ops: completed,
        events: cluster.events_processed(),
        elapsed_secs: elapsed,
    }
}

/// The open-loop bulk path: a sorted `timed_ops` arrival schedule from the
/// workload generator, bulk-loaded in windows through `Cluster::submit_batch`
/// (the event queue's O(1) bulk lane carries every client arrival).
fn bench_cluster_bulk(total_ops: u64, partitioner: Partitioner, shards: u32) -> Measurement {
    bench_cluster_bulk_inner(total_ops, partitioner, shards).0
}

/// The bulk substrate plus the engine's synchronization counters — the
/// `sharded` substrate reads the fold/elision accounting off the same
/// measured run instead of re-simulating.
fn bench_cluster_bulk_inner(
    total_ops: u64,
    partitioner: Partitioner,
    shards: u32,
) -> (Measurement, ShardMetrics) {
    let (mut cluster, keys) = micro_cluster(partitioner, shards);
    let mut workload = CoreWorkload::new(WorkloadConfig {
        record_count: keys,
        operation_count: total_ops,
        read_proportion: 0.5,
        update_proportion: 0.5,
        field_count: 1,
        field_length: 1_000,
        ..WorkloadConfig::default()
    });
    // 10 k ops/s offered load, the same mean arrival gap (100 µs) as the
    // closed-loop substrate drives.
    let process = ArrivalProcess::OpenLoopUniform {
        ops_per_sec: 10_000.0,
    };

    const WINDOW: usize = 10_000;
    let mut rng = SimRng::new(11);
    let mut completed = 0u64;
    let t0 = Instant::now();
    let mut timed = workload.timed_ops(process, SimTime::ZERO, &mut rng);
    loop {
        // Windowed bulk loads keep the arrival lane and op slab bounded
        // while still amortizing submission over O(1) pushes. Each window
        // drains only up to its last arrival, so the clock never runs ahead
        // of the next window's first arrival.
        let window: Vec<BatchOp> = timed
            .by_ref()
            .take(WINDOW)
            .map(|(at, op)| match op.op {
                OperationType::Read => BatchOp::read(at, op.key),
                OperationType::Scan => BatchOp::scan(at, op.key, op.scan_length),
                _ => BatchOp::write(at, op.key, op.value_size),
            })
            .collect();
        let Some(last) = window.last() else { break };
        let window_end = last.at;
        cluster.submit_batch(window);
        completed += cluster.run_until(window_end).len() as u64;
    }
    completed += cluster.run_to_completion(u64::MAX).len() as u64;
    let elapsed = t0.elapsed().as_secs_f64();
    std::hint::black_box(cluster.metrics().stale_read_rate());
    let m = Measurement {
        name: "cluster_bulk",
        ops: completed,
        events: cluster.events_processed(),
        elapsed_secs: elapsed,
    };
    (m, cluster.shard_metrics())
}

/// Pure engine overhead in one invocation: the open-loop bulk workload at
/// shards 1, 2 and 4, with one `BARRIER_DATAPOINT` line per shard count
/// carrying the synchronization counters (windows crossed, folds run,
/// folds elided, fast-forwards) next to the throughput. The grid's
/// headline measurement is the 4-shard cell — the deepest engine
/// configuration, and the one the elision work targets. Counters come
/// from the best (fastest) run; they are identical across repeats anyway,
/// because each shard count is a fixed deterministic universe.
fn bench_sharded(
    total_ops: u64,
    partitioner: Partitioner,
    repeat: u32,
    threads: u64,
) -> Measurement {
    let mut headline = None;
    for shards in [1u32, 2, 4] {
        let (m, sync) = (0..repeat)
            .map(|_| bench_cluster_bulk_inner(total_ops, partitioner, shards))
            .min_by(|a, b| {
                a.0.elapsed_secs
                    .partial_cmp(&b.0.elapsed_secs)
                    .expect("elapsed times are finite")
            })
            .expect("at least one run");
        println!(
            "BARRIER_DATAPOINT {{\"shards\":{shards},\"threads\":{threads},\
             \"windows\":{},\"barrier_folds\":{},\"elided_barriers\":{},\
             \"fast_forwards\":{},\"events_per_sec\":{:.0},\"ns_per_op\":{:.1}}}",
            sync.windows,
            sync.barrier_folds,
            sync.elided_barriers,
            sync.fast_forwards,
            m.events_per_sec(),
            m.ns_per_op()
        );
        headline = Some(m);
    }
    let mut m = headline.expect("three shard counts ran");
    m.name = "sharded";
    m
}

/// Best (highest events/sec) of `repeat` runs — wall-clock benchmarks on a
/// shared machine are noisy, and the best run is the closest estimate of the
/// code's actual cost.
fn best_of(repeat: u32, run: impl Fn() -> Measurement) -> Measurement {
    (0..repeat)
        .map(|_| run())
        .min_by(|a, b| {
            a.elapsed_secs
                .partial_cmp(&b.elapsed_secs)
                .expect("elapsed times are finite")
        })
        .expect("at least one run")
}

/// The measurement grid: which substrate, sized how.
#[derive(Clone, Copy)]
enum Substrate {
    Queue { rounds: u64 },
    Store { ops: u64 },
    Cluster { ops: u64 },
    ClusterBulk { ops: u64 },
    Sharded { ops: u64 },
}

fn main() {
    let harness = Harness::from_env();
    harness.forbid_workload_override("the wall-clock scenarios fix their own op mixes");
    harness.forbid_arrival_override("the wall-clock scenarios fix their own arrival shapes");
    // `--partitioner ordered` re-times the cluster substrates under ordered
    // placement (contiguous ownership, coverage-faithful scans).
    let partitioner = harness.partitioner.unwrap_or_default();
    // `--shards N` re-times the cluster substrates on the conservative-PDES
    // sharded engine (per-node-group event lanes, lookahead windows, window
    // batches dispatched on the worker pool). Each shard count samples its
    // own deterministic universe, so cross-shard-count comparisons are
    // engine cost plus sampling noise; within a shard count, `--threads` is
    // the pure-performance axis.
    let shards = harness.shards.unwrap_or(1);
    let threads = rayon::current_num_threads() as u64;
    let args = &harness.args;
    let scale = harness.scale.workload;
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let repeat: u32 = args
        .iter()
        .position(|a| a == "--repeat")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);

    // --scale 1.0 = 2 M cluster ops (one paper-sized Grid'5000 run).
    let cluster_ops = ((2_000_000.0 * scale) as u64).max(2_000);
    let queue_rounds = ((20.0 * scale.max(0.05)) as u64).max(1);

    eprintln!(
        "exp_throughput: cluster_ops={cluster_ops} queue_rounds={queue_rounds} \
         partitioner={} shards={shards} threads={threads} (best of {repeat})",
        partitioner.label()
    );
    // The store substrate is cheap per op; run 4× the cluster count so its
    // wall-clock stays measurable at small scales.
    let store_ops = cluster_ops * 4;
    let mut grid = vec![
        Substrate::Queue {
            rounds: queue_rounds,
        },
        Substrate::Store { ops: store_ops },
        Substrate::Cluster { ops: cluster_ops },
        Substrate::ClusterBulk { ops: cluster_ops },
    ];
    // The engine-overhead curve only belongs to plain invocations: with an
    // explicit `--shards N` the caller is already sweeping shard counts
    // one cell at a time (the nightly SHARDED_DATAPOINT matrix), and
    // re-running {1, 2, 4} inside each cell would triple its cost.
    if harness.shards.is_none() {
        grid.push(Substrate::Sharded { ops: cluster_ops });
    }
    let measurements = run_timed_grid(grid, |point| {
        let m = match point {
            Substrate::Queue { rounds } => best_of(repeat, || bench_event_queue(rounds)),
            Substrate::Store { ops } => best_of(repeat, || bench_store(ops)),
            Substrate::Cluster { ops } => {
                best_of(repeat, || bench_cluster(ops, partitioner, shards))
            }
            Substrate::ClusterBulk { ops } => {
                best_of(repeat, || bench_cluster_bulk(ops, partitioner, shards))
            }
            // best_of lives inside: each shard count picks its own best
            // run, and the BARRIER_DATAPOINT lines print per shard count.
            Substrate::Sharded { ops } => bench_sharded(ops, partitioner, repeat, threads),
        };
        eprintln!(
            "  {:<20} {:>12.0} events/s  {:>8.1} ns/op  ({} events for {} ops)",
            m.name,
            m.events_per_sec(),
            m.ns_per_op(),
            m.events,
            m.ops
        );
        m
    });

    // The placement mode, shard count and pool size change the cluster
    // substrates' costs, so every recorded measurement carries them — runs
    // of different configurations must never be mistaken for A/B pairs of
    // the same one.
    let json = format!(
        "{{\"scale\":{scale},\"partitioner\":\"{}\",\"shards\":{shards},\
         \"threads\":{threads},\"benches\":[{}]}}",
        partitioner.label(),
        measurements
            .iter()
            .map(Measurement::to_json)
            .collect::<Vec<_>>()
            .join(",")
    );
    println!("{json}");
    // Machine-readable sharded-engine datapoint, greppable from CI logs the
    // same way exp_sweep's MULTICORE_DATAPOINT is: the nightly shards ×
    // threads loop collects one line per (shard count, pool size) cell so
    // the wall-clock speedup curve lands in the workflow artifact next to
    // the multicore sweep figures.
    for m in &measurements {
        if m.name.starts_with("cluster") {
            println!(
                "SHARDED_DATAPOINT {{\"shards\":{shards},\"threads\":{threads},\
                 \"substrate\":\"{}\",\"events_per_sec\":{:.0},\"ns_per_op\":{:.1}}}",
                m.name,
                m.events_per_sec(),
                m.ns_per_op()
            );
        }
    }
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
            eprintln!("error: cannot write --out file {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
