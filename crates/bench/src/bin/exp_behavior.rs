//! EXP-C — application behavior modeling (§III-C).
//!
//! The paper leaves the experimental evaluation of this contribution to
//! future work; this binary provides one anyway: it builds a synthetic
//! webshop trace with known ground-truth phases, fits the behavior model,
//! reports how well the discovered states match the ground truth (period
//! classification accuracy), shows the state → policy assignment produced by
//! the generic rules, and finally compares a behavior-driven run against
//! one-size-fits-all baselines.
//!
//! ```text
//! cargo run --release -p concord-bench --bin exp_behavior
//! ```

use concord::prelude::*;
use concord::PolicySpec;
use concord_bench::{Harness, Sweep};
use concord_workload::SyntheticTraceBuilder;

fn main() {
    let harness = Harness::from_env(); // applies --threads to the pool
    harness.forbid_workload_override("behavior modeling derives its phases from the trace");
    let mut rng = SimRng::new(31);

    // Ground truth: browse (read-mostly, quiet) vs checkout (write-heavy,
    // busy), alternating. Period = 60 s, so each phase is a whole number of
    // periods and the ground-truth label of every period is known.
    let browse = presets::ycsb_b();
    let checkout = presets::ycsb_a();
    let phases = [
        ("browse", 300u64, 80.0),
        ("checkout", 180, 500.0),
        ("browse", 300, 70.0),
        ("checkout", 180, 520.0),
        ("browse", 300, 75.0),
    ];
    let mut builder = SyntheticTraceBuilder::new();
    let mut truth: Vec<&str> = Vec::new();
    for (name, secs, rate) in phases {
        let wl = if name == "browse" {
            browse.clone()
        } else {
            checkout.clone()
        };
        builder = builder.add(name, SimDuration::from_secs(secs), rate, wl);
        for _ in 0..secs / 60 {
            truth.push(name);
        }
    }
    let trace = builder.build(&mut rng);
    println!(
        "EXP-C: synthetic webshop trace, {} operations over {:.0} s, {} ground-truth periods",
        trace.len(),
        trace.duration().as_secs_f64(),
        truth.len()
    );

    // Offline modeling.
    let model = BehaviorModelBuilder::new(SimDuration::from_secs(60))
        .with_state_bounds(2, 4)
        .fit(&trace, &mut rng);

    println!("\ndiscovered states:");
    for state in model.states() {
        println!(
            "  state {}: {:>7.1} ops/s, {:>4.1}% writes, {} periods → {} ({})",
            state.id,
            state.centroid.ops_per_sec,
            state.centroid.write_ratio * 100.0,
            state.periods,
            state.policy.label(),
            state.assigned_by
        );
    }

    // Classification accuracy vs ground truth: map each discovered state to
    // the ground-truth label it most often covers, then score the timeline.
    let assignments = model.timeline_states();
    let n = assignments.len().min(truth.len());
    let mut votes: std::collections::HashMap<(usize, &str), usize> =
        std::collections::HashMap::new();
    for i in 0..n {
        *votes.entry((assignments[i], truth[i])).or_insert(0) += 1;
    }
    let mut state_label: std::collections::HashMap<usize, &str> = std::collections::HashMap::new();
    for state in model.states() {
        let label = ["browse", "checkout"]
            .iter()
            .max_by_key(|l| votes.get(&(state.id, **l)).copied().unwrap_or(0))
            .copied()
            .unwrap_or("browse");
        state_label.insert(state.id, label);
    }
    let correct = (0..n)
        .filter(|&i| state_label[&assignments[i]] == truth[i])
        .count();
    let accuracy = correct as f64 / n as f64;
    println!(
        "\nperiod classification accuracy vs ground truth: {:.1}% ({correct}/{n})",
        accuracy * 100.0
    );

    // Runtime comparison: static baselines through the shared sweep harness
    // (the behavior-driven policy carries a fitted model, which a declarative
    // `PolicySpec` cannot express, so it runs as a single extra point).
    let platform =
        harness.apply_shards(harness.apply_partitioner(concord::platforms::ec2_harmony(0.4)));
    let mut workload = presets::paper_heavy_read_update(4_000, 20_000);
    workload.field_count = 1;
    workload.field_length = 1_000;
    let experiment = Experiment::new(platform, workload)
        .with_clients(24)
        .with_adaptation_interval(SimDuration::from_millis(100))
        .with_seed(31);
    let experiment = harness.apply_arrival(experiment);
    let behavior_report = experiment.run_behavior_policy(BehaviorDrivenPolicy::new(model));
    // Single-seed on purpose: the behavior-driven run above is one seed, so
    // a multi-seed baseline grid would cost simulations whose reports this
    // comparison table could not show.
    let mut reports = Sweep::new(experiment)
        .with_policies(&[PolicySpec::Eventual, PolicySpec::Strong])
        .run()
        .primary();
    reports.push(behavior_report);
    println!(
        "{}",
        render_table("EXP-C: behavior-driven run vs baselines", &reports)
    );
}
