//! EXP-F — adaptive consistency under deterministic fault injection.
//!
//! The paper's evaluation runs every policy on a healthy cluster; this
//! experiment drives the same policy set through a scripted outage on the
//! two-site Grid'5000-like platform, under a fixed **open-loop offered
//! load** (so the load does not politely back off when the cluster degrades,
//! the way a closed loop does):
//!
//! 1. a node crashes (ring reconfigures onto the survivors) and later
//!    recovers;
//! 2. another node goes down transiently — it stays in the ring, so writes
//!    keep fanning out to it (hinted handoff's use case) — then comes back;
//! 3. the two sites partition (cross-site messages are lost) and later heal;
//! 4. the inter-site link degrades 8× (WAN brown-out) and later restores.
//!
//! Timed-out operations get one retry (`retry_on_timeout = 1`), so the
//! report's `retries` column shows the extra work the faults induce.
//!
//! The run is a standard `Sweep` grid — policies × seeds, every point its
//! own cluster — executed once on one thread and once on the full pool, and
//! the per-seed reports are asserted **byte-identical**: fault scripts are
//! part of the deterministic scenario, not a source of nondeterminism.
//!
//! `--repair hints|anti-entropy|full` turns on the repair plane for every
//! point: the crash/recover leg then exercises hinted handoff and recovery
//! migration, and the report grows hint/streaming columns plus the repair
//! bytes the bill prices.
//!
//! `--hedge <ms>` / `--selection dynamic` / `--backoff` turn on the
//! resilience layer for every point, and the report grows hedge/backoff/
//! breaker columns.
//!
//! After the sweep, a **gray-failure leg** runs the same platform through a
//! scenario whose only fault is one node serving 10× slow mid-run (a gray
//! failure: the node answers, just slowly, so nothing marks it down) —
//! once with the resilience layer off and once with hedged reads (2 ms),
//! health-aware dynamic selection and retry backoff. The leg asserts
//! hedging measurably cuts the read p99 and prints a greppable
//! `HEDGE_DATAPOINT` line with both tails and the hedge traffic billed.
//!
//! ```text
//! cargo run --release -p concord-bench --bin exp_faults -- --seeds 2            # PR smoke
//! cargo run --release -p concord-bench --bin exp_faults -- --repair full --seeds 2
//! cargo run --release -p concord-bench --bin exp_faults -- --hedge 20 --selection dynamic --shards 2 --seeds 2
//! cargo run --release -p concord-bench --bin exp_faults -- --scale 1.0 --seeds 8  # nightly
//! ```

use concord::prelude::*;
use concord::PolicySpec;
use concord_bench::{render_summary_table, slim, Harness, Sweep};
use concord_sim::LinkClass;

fn main() {
    let harness = Harness::from_env();
    // The fault script's offsets are derived from this binary's own 20 s
    // open-loop span; an arrival override would desynchronize them.
    harness.forbid_arrival_override(
        "exp_faults derives its open-loop schedule from the fault-script span",
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut platform = harness.harmony_platform();
    // Fault runs need timeouts that fire inside the outage windows, plus one
    // retry so the report separates "slow" from "failed".
    platform.cluster.op_timeout = SimDuration::from_secs(1);
    platform.cluster.retry_on_timeout = 1;
    let workload = harness.apply_workload(slim(presets::harmony_grid5000_workload(
        harness.scale.workload,
    )));

    // Offered load sized so the arrival schedule spans ~20 simulated seconds
    // at any --scale; the fault script hits fixed fractions of that span.
    let span_secs = 20.0;
    let rate = workload.operation_count as f64 / span_secs;
    let at = |frac: f64| span_secs * frac;
    let scenario = Scenario::open_poisson(rate).with_faults(vec![
        FaultEvent::at_secs(at(0.15), FaultAction::CrashNode(1)),
        FaultEvent::at_secs(at(0.25), FaultAction::NodeDown(2)),
        FaultEvent::at_secs(at(0.35), FaultAction::NodeUp(2)),
        FaultEvent::at_secs(at(0.40), FaultAction::RecoverNode(1)),
        FaultEvent::at_secs(at(0.50), FaultAction::PartitionDcs(0, 1)),
        FaultEvent::at_secs(at(0.70), FaultAction::HealDcs(0, 1)),
        FaultEvent::at_secs(at(0.80), FaultAction::DegradeLink(LinkClass::InterDc, 8.0)),
        FaultEvent::at_secs(at(0.95), FaultAction::RestoreLink(LinkClass::InterDc)),
    ]);

    println!(
        "EXP-F (faults): platform = {}, {} records, {} operations, scenario = {}, {} seeds",
        platform.name,
        workload.record_count,
        workload.operation_count,
        scenario.label(),
        harness.seed_count,
    );

    let experiment = Experiment::new(platform.clone(), workload.clone())
        .with_adaptation_interval(SimDuration::from_millis(100))
        .with_seed(2013)
        .with_scenario(scenario);

    let sweep = Sweep::new(experiment)
        .with_policies(&[
            PolicySpec::Eventual,
            PolicySpec::Quorum,
            PolicySpec::Harmony { tolerance: 0.20 },
            PolicySpec::Harmony { tolerance: 0.40 },
        ])
        .with_seeds(&harness.seeds(2013));

    let timed_run = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool construction cannot fail");
        pool.install(|| sweep.run())
    };

    let sequential = timed_run(1);
    let parallel = timed_run(cores.max(2));
    let identical = sequential
        .reports
        .iter()
        .zip(&parallel.reports)
        .all(|(a, b)| a.to_json() == b.to_json());
    assert!(
        identical,
        "fault-scenario sweep diverged across thread counts"
    );

    let reports = parallel.primary();
    println!("{}", render_table("EXP-F (first seed)", &reports));
    if parallel.seeds.len() > 1 {
        println!(
            "{}",
            render_summary_table("EXP-F (faults)", &parallel.summaries())
        );
    }
    println!("policy                        timeouts  retries  msgs-lost  faults");
    for r in &reports {
        println!(
            "{:<28} {:>9} {:>8} {:>10} {:>7}",
            r.policy, r.timeouts, r.retries, r.messages_lost, r.faults_injected
        );
        assert_eq!(r.faults_injected, 8, "every scripted fault must fire");
        assert!(
            r.messages_lost > 0,
            "{}: the partition window must drop messages",
            r.policy
        );
    }
    if let Some(mode) = harness.repair {
        println!(
            "policy                        hints-q  hints-rep  hints-drop  pages-cmp  recs-strm  repair-KB"
        );
        for r in &reports {
            println!(
                "{:<28} {:>8} {:>10} {:>11} {:>10} {:>10} {:>10.1}",
                r.policy,
                r.hints_queued,
                r.hints_replayed,
                r.hints_dropped,
                r.repair_pages_compared,
                r.repair_records_streamed,
                r.repair_traffic.total() as f64 / 1024.0,
            );
            // The crash/recover leg guarantees work for whichever repair
            // subsystems the mode enables; a silent zero would mean the
            // flag never reached the cluster.
            if mode.hints_enabled() {
                assert!(
                    r.hints_queued > 0,
                    "{}: the crash window must queue hints",
                    r.policy
                );
            }
            if mode.anti_entropy_enabled() {
                assert!(
                    r.repair_pages_compared > 0,
                    "{}: recovery must compare page summaries",
                    r.policy
                );
            }
            assert!(
                r.repair_traffic.total() > 0,
                "{}: the repair plane must move bytes",
                r.policy
            );
        }
    }
    if harness.hedge.is_some() || harness.selection.is_some() || harness.backoff {
        println!(
            "policy                        hedged  hedge-wins  hedge-KB  backoff-ret  breakers"
        );
        for r in &reports {
            println!(
                "{:<28} {:>7} {:>11} {:>9.1} {:>12} {:>9}",
                r.policy,
                r.hedged_requests,
                r.hedge_wins,
                r.hedge_bytes as f64 / 1024.0,
                r.backoff_retries,
                r.breaker_opens,
            );
        }
    }
    println!(
        "fault sweep: {} points, per-seed reports byte-identical across thread counts: {identical}",
        sweep.len()
    );

    // Gray-failure leg: one node serves 10x slow for the middle 40% of the
    // run — it still answers, so nothing marks it down — and the same run is
    // measured with the resilience layer off and on. The 2 ms hedge delay is
    // calibrated to the platform: healthy local reads finish in ~1 ms, reads
    // stuck behind the gray node take several times that, so the hedge fires
    // almost exclusively for the reads that need rescuing.
    let gray_scenario = Scenario::open_poisson(rate).with_faults(vec![
        FaultEvent::at_secs(at(0.30), FaultAction::SlowNode(3, 10.0)),
        FaultEvent::at_secs(at(0.70), FaultAction::RestoreNode(3)),
    ]);
    let first_seed = harness.seeds(2013)[0];
    let gray_run = |hedge: bool, dynamic: bool| {
        let mut p = platform.clone();
        p.cluster.resilience = ResilienceConfig::off();
        p.cluster.read_selection = ReplicaSelection::Closest;
        if hedge {
            p.cluster.resilience.hedge_delay = SimDuration::from_millis(2);
        }
        if dynamic {
            p.cluster.resilience.backoff = true;
            p.cluster.read_selection = ReplicaSelection::Dynamic;
        }
        Experiment::new(p, workload.clone())
            .with_adaptation_interval(SimDuration::from_millis(100))
            .with_seed(first_seed)
            .with_scenario(gray_scenario.clone())
            .run_spec(&PolicySpec::Eventual)
    };
    // Three arms: no resilience; hedging alone (reads still hit the gray
    // node, the 2 ms hedge rescues them — the cleanest attribution of the
    // p99 cut to hedging itself); the full layer (dynamic selection also
    // steers reads away, so hedges fire less and win less).
    let off = gray_run(false, false);
    let hedged = gray_run(true, false);
    let full = gray_run(true, true);
    println!("\ngray failure (node 3 serves 10x slow): hedging off vs on (hedge=2ms)");
    println!("resilience   read-p50(ms)  read-p99(ms)  hedged  hedge-wins  hedge-KB  backoff-ret  breakers");
    for (label, r) in [("off", &off), ("hedged", &hedged), ("full", &full)] {
        println!(
            "{:<12} {:>13.3} {:>13.3} {:>7} {:>11} {:>9.1} {:>12} {:>9}",
            label,
            r.read_latency_ms.p50,
            r.read_latency_ms.p99,
            r.hedged_requests,
            r.hedge_wins,
            r.hedge_bytes as f64 / 1024.0,
            r.backoff_retries,
            r.breaker_opens,
        );
        assert_eq!(r.faults_injected, 2, "both gray faults must fire");
        assert_eq!(r.total_ops, off.total_ops, "every arm completes every op");
    }
    assert_eq!(off.hedged_requests, 0, "resilience off must never hedge");
    assert_eq!(off.hedge_bytes, 0);
    assert!(
        hedged.hedged_requests > 0,
        "the gray window must trigger hedges"
    );
    assert!(
        hedged.hedge_wins > 0,
        "hedges past a 10x-slow node must win"
    );
    assert!(hedged.hedge_bytes > 0, "hedge duplicates must be metered");
    for (label, r) in [("hedged", &hedged), ("full", &full)] {
        assert!(
            r.read_latency_ms.p99 < off.read_latency_ms.p99 * 0.9,
            "{label}: the resilience layer must measurably cut the read p99 ({:.3} ms vs {:.3} ms)",
            r.read_latency_ms.p99,
            off.read_latency_ms.p99
        );
    }
    let (off_bill, hedged_bill) = (off.bill.as_ref().unwrap(), hedged.bill.as_ref().unwrap());
    // Every hedge byte is metered *inside* the billable traffic the bill
    // prices — not tracked on the side. (The off/on traffic totals are not
    // compared: hedging perturbs the sampled universe, so the cross-run
    // delta is dominated by re-sampled message placement, not by the hedge
    // bytes. `resilience_layer_surfaces_in_fault_reports_and_the_bill`
    // pins the controlled off/on traffic and bill comparison.)
    assert!(
        hedged.hedge_bytes <= hedged.usage.traffic.total(),
        "hedge bytes are part of the metered traffic, not extra"
    );
    println!(
        "HEDGE_DATAPOINT {{\"hedge_ms\":2,\"p99_off_ms\":{:.3},\"p99_hedged_ms\":{:.3},\"p99_full_ms\":{:.3},\"hedged\":{},\"hedge_wins\":{},\"hedge_kb\":{:.1},\"backoff_retries\":{},\"breaker_opens\":{},\"network_usd_off\":{:.6},\"network_usd_hedged\":{:.6}}}",
        off.read_latency_ms.p99,
        hedged.read_latency_ms.p99,
        full.read_latency_ms.p99,
        hedged.hedged_requests,
        hedged.hedge_wins,
        hedged.hedge_bytes as f64 / 1024.0,
        full.backoff_retries,
        full.breaker_opens,
        off_bill.network_usd,
        hedged_bill.network_usd,
    );
}
