//! Golden parallel-vs-sequential equivalence tests.
//!
//! The sweep engine's contract is that thread count is a pure performance
//! knob: a multi-seed sweep must produce **byte-identical** per-seed
//! [`RunReport`]s at 1, 2 and N threads. These tests pin that contract by
//! comparing the serialized reports (every field participates) across pool
//! sizes, for both the `Sweep` grid and the underlying
//! `Experiment::compare` / `run_seeds` entry points.

use concord::prelude::*;
use concord::PolicySpec;
use concord_bench::Sweep;

fn small_experiment() -> Experiment {
    let platform = concord::platforms::grid5000_cost(0.15);
    let mut workload = presets::paper_heavy_read_update(1_000, 3_000);
    workload.field_count = 1;
    workload.field_length = 512;
    Experiment::new(platform, workload)
        .with_clients(16)
        .with_adaptation_interval(SimDuration::from_millis(200))
        .with_seed(2013)
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool construction cannot fail")
}

#[test]
fn multi_seed_sweep_reports_are_byte_identical_across_thread_counts() {
    let seeds: Vec<u64> = (2013..2013 + 8).collect();
    let sweep = Sweep::new(small_experiment())
        .with_policies(&[
            PolicySpec::Eventual,
            PolicySpec::Quorum,
            PolicySpec::Harmony { tolerance: 0.2 },
        ])
        .with_seeds(&seeds);

    let baseline: Vec<String> = pool(1)
        .install(|| sweep.run())
        .reports
        .iter()
        .map(|r| r.to_json())
        .collect();
    assert_eq!(baseline.len(), 24, "3 policies × 8 seeds");

    for threads in [2, 4, 8] {
        let run: Vec<String> = pool(threads)
            .install(|| sweep.run())
            .reports
            .iter()
            .map(|r| r.to_json())
            .collect();
        assert_eq!(
            run, baseline,
            "per-seed reports diverged at {threads} threads"
        );
    }
}

#[test]
fn experiment_compare_matches_sequential_run_spec() {
    let exp = small_experiment();
    let specs = [PolicySpec::Eventual, PolicySpec::Strong, PolicySpec::Bismar];
    let sequential: Vec<RunReport> =
        pool(1).install(|| specs.iter().map(|s| exp.run_spec(s)).collect());
    let parallel = pool(4).install(|| exp.compare(&specs));
    assert_eq!(parallel, sequential);
}

#[test]
fn run_seeds_is_thread_count_invariant() {
    let exp = small_experiment();
    let seeds: Vec<u64> = (1..=8).collect();
    let one = pool(1).install(|| exp.run_seeds(&PolicySpec::Quorum, &seeds));
    let many = pool(5).install(|| exp.run_seeds(&PolicySpec::Quorum, &seeds));
    assert_eq!(one, many);
    // One report per seed, in seed order (seeds shuffle the workload, so
    // reports differ from each other).
    assert_eq!(one.len(), 8);
}

/// The fault scenario of the acceptance criteria: an open-loop offered load
/// with a crash/recover + partition/heal + degradation script.
fn fault_experiment() -> Experiment {
    let mut platform = concord::platforms::grid5000_cost(0.15);
    platform.cluster.op_timeout = SimDuration::from_millis(500);
    platform.cluster.retry_on_timeout = 1;
    let mut workload = presets::paper_heavy_read_update(1_000, 3_000);
    workload.field_count = 1;
    workload.field_length = 512;
    // 3000 ops at 10k/s span 0.3 s; the script hits the middle of the run.
    let scenario = Scenario::open_poisson(10_000.0).with_faults(vec![
        FaultEvent::at_secs(0.05, FaultAction::CrashNode(1)),
        FaultEvent::at_secs(0.10, FaultAction::PartitionDcs(0, 1)),
        FaultEvent::at_secs(0.18, FaultAction::HealDcs(0, 1)),
        FaultEvent::at_secs(0.20, FaultAction::RecoverNode(1)),
        FaultEvent::at_secs(
            0.22,
            FaultAction::DegradeLink(concord::sim::LinkClass::InterDc, 6.0),
        ),
    ]);
    Experiment::new(platform, workload)
        .with_adaptation_interval(SimDuration::from_millis(50))
        .with_seed(4099)
        .with_scenario(scenario)
}

#[test]
fn fault_scenario_reports_are_byte_identical_across_thread_counts() {
    let seeds: Vec<u64> = (4099..4099 + 6).collect();
    let sweep = Sweep::new(fault_experiment())
        .with_policies(&[
            PolicySpec::Eventual,
            PolicySpec::Quorum,
            PolicySpec::Harmony { tolerance: 0.2 },
        ])
        .with_seeds(&seeds);

    let baseline: Vec<String> = pool(1)
        .install(|| sweep.run())
        .reports
        .iter()
        .map(|r| r.to_json())
        .collect();
    assert_eq!(baseline.len(), 18, "3 policies × 6 seeds");
    // The faults actually fired in every report.
    for json in &baseline {
        assert!(json.contains("\"faults_injected\": 5"), "script must fire");
    }

    for threads in [2, 4, 8] {
        let run: Vec<String> = pool(threads)
            .install(|| sweep.run())
            .reports
            .iter()
            .map(|r| r.to_json())
            .collect();
        assert_eq!(
            run, baseline,
            "fault-scenario reports diverged at {threads} threads"
        );
    }
}

#[test]
fn repair_enabled_fault_reports_are_byte_identical_across_thread_counts() {
    // The repair plane (hint replay timers, anti-entropy sweeps, recovery
    // migration) runs inside each point's own cluster, so it must be as
    // thread-count-invariant as everything else. Same fault script as
    // above, repair fully on, plus a transient down/up window so hinted
    // handoff has a destination that is down but still in the ring.
    let mut experiment = fault_experiment();
    experiment.platform.cluster.repair = RepairConfig::with_mode(RepairMode::Full);
    let scenario = experiment.scenario().with_faults(vec![
        FaultEvent::at_secs(0.05, FaultAction::CrashNode(1)),
        FaultEvent::at_secs(0.08, FaultAction::NodeDown(2)),
        FaultEvent::at_secs(0.14, FaultAction::NodeUp(2)),
        FaultEvent::at_secs(0.20, FaultAction::RecoverNode(1)),
    ]);
    let experiment = experiment.with_scenario(scenario);
    let seeds: Vec<u64> = (4099..4099 + 4).collect();
    let sweep = Sweep::new(experiment)
        .with_policies(&[PolicySpec::Eventual, PolicySpec::Quorum])
        .with_seeds(&seeds);

    let baseline: Vec<String> = pool(1)
        .install(|| sweep.run())
        .reports
        .iter()
        .map(|r| r.to_json())
        .collect();
    assert_eq!(baseline.len(), 8, "2 policies × 4 seeds");
    // The repair plane actually did work in every report: the down window
    // queued hints and the crash/recover legs streamed records.
    for json in &baseline {
        assert!(!json.contains("\"hints_queued\": 0"), "hints must queue");
        assert!(
            !json.contains("\"repair_records_streamed\": 0"),
            "recovery must stream records"
        );
    }

    for threads in [2, 4, 8] {
        let run: Vec<String> = pool(threads)
            .install(|| sweep.run())
            .reports
            .iter()
            .map(|r| r.to_json())
            .collect();
        assert_eq!(
            run, baseline,
            "repair-enabled reports diverged at {threads} threads"
        );
    }
}

#[test]
fn open_loop_adaptive_reports_are_byte_identical_across_thread_counts() {
    let experiment = small_experiment().with_arrival(ArrivalProcess::OpenLoopPoisson {
        ops_per_sec: 15_000.0,
    });
    let seeds: Vec<u64> = (2013..2013 + 8).collect();
    let sweep = Sweep::new(experiment)
        .with_policies(&[PolicySpec::Eventual, PolicySpec::Harmony { tolerance: 0.2 }])
        .with_seeds(&seeds);

    let baseline: Vec<String> = pool(1)
        .install(|| sweep.run())
        .reports
        .iter()
        .map(|r| r.to_json())
        .collect();
    assert_eq!(baseline.len(), 16, "2 policies × 8 seeds");
    for threads in [2, 4, 8] {
        let run: Vec<String> = pool(threads)
            .install(|| sweep.run())
            .reports
            .iter()
            .map(|r| r.to_json())
            .collect();
        assert_eq!(
            run, baseline,
            "open-loop reports diverged at {threads} threads"
        );
    }
}

#[test]
fn sweep_summaries_are_thread_count_invariant() {
    let sweep = Sweep::new(small_experiment())
        .with_policies(&[PolicySpec::Eventual])
        .with_seeds(&[1, 2, 3, 4, 5, 6]);
    let a = pool(1).install(|| sweep.run()).summaries();
    let b = pool(6).install(|| sweep.run()).summaries();
    // Mean and CI come from an ordered fold: bit-identical, not just close.
    assert_eq!(a[0].throughput, b[0].throughput);
    assert_eq!(a[0].stale_rate, b[0].stale_rate);
    assert_eq!(a[0].cost_usd, b[0].cost_usd);
}
