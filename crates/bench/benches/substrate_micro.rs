//! Micro-benchmarks of the substrates the experiments run on: the event
//! queue, the consistent-hash ring, the YCSB key generators and the
//! end-to-end simulated cluster. These are not results from the paper; they
//! guard the performance of the simulator itself (a slow substrate would make
//! the full-scale paper experiments impractical to reproduce).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use concord_cluster::{Cluster, ClusterConfig, ConsistencyLevel, Key, ReplicationStrategy, Ring};
use concord_sim::{EventQueue, SimDuration, SimRng, SimTime, Topology};
use concord_workload::generators::{ItemGenerator, ScrambledZipfianGenerator, UniformGenerator};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/event_queue");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(1);
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule_at(SimTime::from_micros(rng.next_bounded(1_000_000)), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
    group.finish();
}

fn bench_ring(c: &mut Criterion) {
    let topo = Topology::single_dc(50);
    let ring = Ring::new(
        &topo,
        5,
        ReplicationStrategy::Simple,
        32,
        concord_cluster::Partitioner::Hash,
    );
    let mut group = c.benchmark_group("substrate/ring");
    group.throughput(Throughput::Elements(1));
    group.bench_function("replica_lookup", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(1);
            black_box(ring.replicas(Key(key)))
        })
    });
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/keygen");
    group.throughput(Throughput::Elements(1));
    group.bench_function("uniform", |b| {
        let mut gen = UniformGenerator::new(25_000_000);
        let mut rng = SimRng::new(2);
        b.iter(|| black_box(gen.next(&mut rng)))
    });
    group.bench_function("scrambled_zipfian", |b| {
        let mut gen = ScrambledZipfianGenerator::new(25_000_000);
        let mut rng = SimRng::new(3);
        b.iter(|| black_box(gen.next(&mut rng)))
    });
    group.finish();
}

fn bench_cluster_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/cluster");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2_000));
    for level in [ConsistencyLevel::One, ConsistencyLevel::Quorum] {
        group.bench_with_input(
            BenchmarkId::new("ops_2k", level.to_string()),
            &level,
            |b, &level| {
                b.iter(|| {
                    let mut cluster = Cluster::new(ClusterConfig::lan_test(8, 3), 11);
                    cluster.load_records((0..500u64).map(|k| (k, 1_000)));
                    cluster.set_levels(level, ConsistencyLevel::One);
                    let mut at = SimTime::ZERO;
                    for i in 0..2_000u64 {
                        at += SimDuration::from_micros(100);
                        if i % 2 == 0 {
                            cluster.submit_write_at(i % 500, 1_000, at);
                        } else {
                            cluster.submit_read_at(i % 500, at);
                        }
                    }
                    black_box(cluster.run_to_completion(10_000_000).len())
                })
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_event_queue, bench_ring, bench_generators, bench_cluster_ops
}
criterion_main!(benches);
