//! EXP-B as a benchmark: the per-level cost sweep and the Bismar run on a
//! scaled-down EC2-like two-availability-zone platform (RF 5). As with
//! `exp_a_harmony`, the scientific numbers come from the `exp_cost_breakdown`
//! and `exp_bismar` binaries; this bench tracks the simulation cost of the
//! cost experiments and of Bismar's per-step level evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use concord::prelude::*;
use concord::PolicySpec;
use concord_core::{BismarConfig, BismarPolicy, ClusterProfile, PolicyContext};
use concord_monitor::AccessMonitor;

fn experiment() -> Experiment {
    let platform = concord::platforms::ec2_cost(0.35);
    let mut workload = presets::cost_workload(0.0006);
    workload.field_count = 1;
    workload.field_length = 1_000;
    Experiment::new(platform, workload)
        .with_clients(16)
        .with_adaptation_interval(SimDuration::from_millis(250))
        .with_seed(2013)
}

fn bench_level_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp_b/per_level_run");
    group.sample_size(10);
    for level in [1u32, 3, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(level), &level, |b, &l| {
            let exp = experiment();
            b.iter(|| black_box(exp.run_spec(&PolicySpec::FixedReadReplicas(l))))
        });
    }
    group.bench_function("bismar", |b| {
        let exp = experiment();
        b.iter(|| black_box(exp.run_spec(&PolicySpec::Bismar)))
    });
    group.finish();
}

fn bench_bismar_decision(c: &mut Criterion) {
    // The cost of one Bismar adaptation step (evaluate every level, pick the
    // most efficient) — this is what runs inside the control loop.
    let mut group = c.benchmark_group("exp_b/bismar_decision");
    group.throughput(Throughput::Elements(1));
    group.bench_function("evaluate_and_choose", |b| {
        let mut bismar = BismarPolicy::new(BismarConfig::default());
        let mut monitor = AccessMonitor::default();
        let mut snapshot = monitor.snapshot(SimTime::from_secs(1));
        snapshot.read_rate = 3_000.0;
        snapshot.write_rate = 600.0;
        snapshot.propagation_time_ms = 20.0;
        snapshot.first_write_time_ms = 1.0;
        snapshot.total_reads = 30_000;
        snapshot.total_writes = 6_000;
        let ctx = PolicyContext {
            now: SimTime::from_secs(1),
            snapshot,
            profile: ClusterProfile {
                replication_factor: 5,
                dc_count: 2,
                replicas_in_local_dc: 3,
                intra_dc_latency_ms: 0.5,
                inter_dc_latency_ms: 1.6,
                node_count: 18,
                record_size_bytes: 1_000,
                storage_service_ms: 0.3,
            },
        };
        b.iter(|| {
            use concord_core::ConsistencyPolicy;
            black_box(bismar.decide(black_box(&ctx)))
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_level_sweep, bench_bismar_decision
}
criterion_main!(benches);
