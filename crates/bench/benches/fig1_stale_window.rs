//! FIG1 bench: cost of evaluating the stale-read window model.
//!
//! Harmony evaluates the analytic estimator (and the level solver) at every
//! adaptation step, so its cost matters for how frequently the controller can
//! run; the Monte-Carlo estimator is the offline validation path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use concord_staleness::{
    AnalyticEstimator, LevelSolver, MonteCarloEstimator, PropagationModel, StaleReadEstimator,
    StalenessParams,
};

fn params(read_level: u32) -> StalenessParams {
    StalenessParams::basic(5, read_level, 1, 2_000.0, 300.0, 1.0, 40.0)
}

fn bench_analytic(c: &mut Criterion) {
    let estimator = AnalyticEstimator::new();
    let mut group = c.benchmark_group("fig1/analytic");
    for level in [1u32, 3, 5] {
        group.bench_with_input(BenchmarkId::new("closed_form", level), &level, |b, &r| {
            let p = params(r);
            b.iter(|| estimator.estimate(black_box(&p)))
        });
    }
    // The quadrature path (general propagation-delay distribution).
    let general = StalenessParams {
        propagation: PropagationModel::General {
            delay: concord_sim::DelayDistribution::wan(10.0, 8.0),
        },
        ..params(2)
    };
    group.bench_function("quadrature", |b| {
        b.iter(|| estimator.estimate(black_box(&general)))
    });
    group.finish();
}

fn bench_solver(c: &mut Criterion) {
    let solver = LevelSolver::new();
    c.bench_function("fig1/level_solver", |b| {
        let p = params(1);
        b.iter(|| solver.solve(black_box(&p), black_box(0.05)))
    });
}

fn bench_montecarlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/monte_carlo");
    group.sample_size(10);
    for reads in [10_000usize, 50_000] {
        group.bench_with_input(BenchmarkId::from_parameter(reads), &reads, |b, &n| {
            let estimator = MonteCarloEstimator::new(n, 7);
            let p = params(1);
            b.iter(|| estimator.estimate(black_box(&p)))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_analytic, bench_solver, bench_montecarlo
}
criterion_main!(benches);
