//! EXP-A as a benchmark: end-to-end adaptive runs (Harmony vs the static
//! baselines) on a scaled-down Grid'5000-like platform. Criterion reports the
//! wall-clock cost of simulating each policy's run; the printed RunReports of
//! `exp_harmony` carry the scientific results, this bench guards that the
//! whole loop (workload → cluster → monitor → policy) stays fast enough to
//! reproduce the paper's 3–5 M-operation runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use concord::prelude::*;
use concord::PolicySpec;

fn experiment() -> Experiment {
    let platform = concord::platforms::grid5000_harmony(0.1);
    let mut workload = presets::paper_heavy_read_update(2_000, 6_000);
    workload.field_count = 1;
    workload.field_length = 1_000;
    Experiment::new(platform, workload)
        .with_clients(16)
        .with_adaptation_interval(SimDuration::from_millis(100))
        .with_seed(2013)
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp_a/run_6k_ops");
    group.sample_size(10);
    group.throughput(Throughput::Elements(6_000));
    for (name, spec) in [
        ("eventual", PolicySpec::Eventual),
        ("strong", PolicySpec::Strong),
        ("harmony_20pct", PolicySpec::Harmony { tolerance: 0.20 }),
        ("harmony_40pct", PolicySpec::Harmony { tolerance: 0.40 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            let exp = experiment();
            b.iter(|| black_box(exp.run_spec(spec)))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_policies
}
criterion_main!(benches);
