//! Minimal `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! The build environment is fully offline, so this crate re-implements the
//! small slice of serde_derive the workspace uses: plain (non-generic) named
//! structs, tuple structs, and enums with unit / tuple / struct variants,
//! mapped onto the shim's `serde::Value` data model (externally tagged enums,
//! newtype structs transparent — matching real serde's JSON representation).
//! Input is parsed directly from the `proc_macro` token stream; generated
//! code is emitted as a string and re-parsed. The only field attribute
//! honoured is `#[serde(default)]` (absent fields fall back to
//! `Default::default()` instead of erroring); everything else is skipped.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<(String, VariantShape)>),
}

/// One named field: its identifier plus whether `#[serde(default)]` was set.
struct Field {
    name: String,
    default: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

/// Derive `serde::Serialize` (shim data model: `fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    gen_serialize(&name, &shape)
        .parse()
        .expect("generated impl parses")
}

/// Derive `serde::Deserialize` (shim data model: `fn from_value(&Value)`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    gen_deserialize(&name, &shape)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types ({name})");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::NamedStruct(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                (name, Shape::TupleStruct(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => (name, Shape::UnitStruct),
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::Enum(parse_variants(g.stream())))
            }
            other => panic!("unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Skip leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    skip_attrs_and_vis_collecting(tokens, i);
}

/// Like [`skip_attrs_and_vis`], additionally reporting whether one of the
/// skipped attributes was `#[serde(default)]`.
fn skip_attrs_and_vis_collecting(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(attr)) = tokens.get(*i + 1) {
                    has_default |= attr_is_serde_default(attr.stream());
                }
                *i += 2; // '#' plus the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return has_default,
        }
    }
}

/// Whether an attribute's bracket content is `serde(..., default, ...)` —
/// the *bare* form only. `#[serde(default = "path")]` names a fallback
/// function this shim does not implement; honouring it as
/// `Default::default()` would silently produce the wrong value, so it is
/// rejected loudly instead.
fn attr_is_serde_default(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            let args: Vec<TokenTree> = args.stream().into_iter().collect();
            for (i, t) in args.iter().enumerate() {
                if matches!(t, TokenTree::Ident(a) if a.to_string() == "default") {
                    match args.get(i + 1) {
                        None => return true,
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' => return true,
                        _ => panic!(
                            "serde shim derive supports only the bare #[serde(default)] \
                             (no `default = \"path\"` fallback functions)"
                        ),
                    }
                }
            }
            false
        }
        _ => false,
    }
}

/// Parse `name: Type, ...` fields, tracking `<...>` depth so commas inside
/// generic arguments don't split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = skip_attrs_and_vis_collecting(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        fields.push(Field { name, default });
        i += 1;
        // Skip `:` then the type, up to a top-level comma.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Count the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle = 0i32;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                fields += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        variants.push((name, shape));
        // Skip to (and over) the variant separator.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|Field { name: f, .. }| {
                    format!(
                        "__fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(__fields)"
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, shape)| match shape {
                    VariantShape::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n"
                    ),
                    VariantShape::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::to_value(__f0))]),\n"
                    ),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                             ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let pushes: String = fields
                            .iter()
                            .map(|Field { name: f, .. }| {
                                format!(
                                    "__inner.push((\"{f}\".to_string(), \
                                     ::serde::Serialize::to_value({f})));\n"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             let mut __inner: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\n{pushes}\
                             ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(__inner))])\n}}\n"
                        )
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

/// One `field: ...,` initializer for a named field. `#[serde(default)]`
/// fields fall back to `Default::default()` when the serialized object does
/// not carry them (matching real serde), which is what keeps configs
/// serialized before a field existed deserializable.
fn gen_field_init(field: &Field) -> String {
    let f = &field.name;
    if field.default {
        format!(
            "{f}: match ::serde::obj_field(__obj, \"{f}\") {{\n\
             ::serde::Value::Null => ::std::default::Default::default(),\n\
             __fv => ::serde::Deserialize::from_value(__fv)?,\n}},\n"
        )
    } else {
        format!("{f}: ::serde::Deserialize::from_value(::serde::obj_field(__obj, \"{f}\"))?,\n")
    }
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields.iter().map(gen_field_init).collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::Error::msg(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!("::serde::Deserialize::from_value(::serde::arr_item(__arr, {i}))?")
                })
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| \
                 ::serde::Error::msg(\"expected array for {name}\"))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, s)| matches!(s, VariantShape::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|(v, s)| match s {
                    VariantShape::Unit => None,
                    VariantShape::Tuple(1) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(::serde::arr_item(__arr, {i}))?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\nlet __arr = __inner.as_array().ok_or_else(|| \
                             ::serde::Error::msg(\"expected array for {name}::{v}\"))?;\n\
                             ::std::result::Result::Ok({name}::{v}({}))\n}}\n",
                            items.join(", ")
                        ))
                    }
                    VariantShape::Named(fields) => {
                        let inits: String = fields.iter().map(gen_field_init).collect();
                        Some(format!(
                            "\"{v}\" => {{\nlet __obj = __inner.as_object().ok_or_else(|| \
                             ::serde::Error::msg(\"expected object for {name}::{v}\"))?;\n\
                             ::std::result::Result::Ok({name}::{v} {{\n{inits}}})\n}}\n"
                        ))
                    }
                })
                .collect();
            format!(
                "if let ::serde::Value::Str(__s) = __v {{\n\
                 #[allow(unreachable_code)]\n\
                 return match __s.as_str() {{\n{unit_arms}\
                 _ => ::std::result::Result::Err(::serde::Error::msg(\"unknown unit variant of {name}\")),\n}};\n}}\n\
                 let (__tag, __inner) = __v.as_variant().ok_or_else(|| \
                 ::serde::Error::msg(\"expected externally tagged enum for {name}\"))?;\n\
                 #[allow(unused_variables, unreachable_code)]\n\
                 match __tag {{\n{data_arms}\
                 _ => ::std::result::Result::Err(::serde::Error::msg(\"unknown variant of {name}\")),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<{name}, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
