//! The execution engine: a work-stealing pool of scoped std threads.
//!
//! Every parallel operation materializes its input, then fans work out to
//! `current_num_threads()` OS threads via [`run_indexed`]. Work distribution
//! is work stealing over per-worker chunked deques: each worker starts with
//! a contiguous slice of the input, front-pops small chunks of its own
//! deque, and — once empty — steals the back half of a victim's deque, so
//! uneven task durations balance automatically without every handoff
//! crossing one shared lock. **Results are always collected in input
//! order** — the output of a parallel map is byte-identical to the
//! sequential map, independent of how the scheduler interleaved the items.
//!
//! Threads are spawned per call with `std::thread::scope` rather than parked
//! in a global pool. That keeps borrowed inputs (`par_iter` over a slice)
//! safe without lifetime transmutation, makes nested parallelism
//! deadlock-free, and costs a few tens of microseconds per call — noise for
//! the coarse-grained work (whole simulation runs, Monte-Carlo chunks) this
//! workspace parallelizes. Inside a parallel region the thread count is
//! pinned to 1, so an item that itself calls `par_iter` runs that inner
//! pipeline sequentially — the configured pool size bounds the *total*
//! OS-thread count, it is not multiplied by nesting depth.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Error returned by [`ThreadPoolBuilder::build`]. The vendored builder
/// cannot actually fail; the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Default thread count: the `RAYON_NUM_THREADS` environment variable if set
/// to a positive integer, otherwise the machine's available parallelism.
fn default_num_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Explicit global override installed by `ThreadPoolBuilder::build_global`
/// (0 = unset, fall through to the env/default).
static GLOBAL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override installed by `ThreadPool::install` (0 = unset).
    static INSTALLED: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// The number of threads parallel operations started from this thread will
/// use: an [`ThreadPool::install`] scope wins, then a `build_global` pool,
/// then `RAYON_NUM_THREADS`, then the machine's available parallelism.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED.with(|c| c.get());
    if installed >= 1 {
        return installed;
    }
    let global = GLOBAL_OVERRIDE.load(Ordering::Relaxed);
    if global >= 1 {
        return global;
    }
    default_num_threads()
}

/// Builder for a [`ThreadPool`] (mirrors `rayon::ThreadPoolBuilder`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default configuration.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Set the number of worker threads (0 = use the default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build a pool handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads >= 1 {
            self.num_threads
        } else {
            default_num_threads()
        };
        Ok(ThreadPool { num_threads: n })
    }

    /// Install this configuration as the process-global default for every
    /// parallel operation that is not inside an explicit
    /// [`ThreadPool::install`] scope. Unlike upstream rayon, calling it more
    /// than once simply replaces the previous setting.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = if self.num_threads >= 1 {
            self.num_threads
        } else {
            default_num_threads()
        };
        GLOBAL_OVERRIDE.store(n, Ordering::Relaxed);
        Ok(())
    }
}

/// A handle fixing the thread count for parallel operations run under
/// [`ThreadPool::install`].
///
/// Threads are spawned per operation (see the module docs), so the handle
/// itself owns no OS resources — it is a configuration scope, which also
/// means any number of pools can coexist and nest.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The thread count operations inside [`ThreadPool::install`] use.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `f` with this pool's thread count as the current default.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = INSTALLED.with(|c| c.replace(self.num_threads));
        // Restore on unwind too, so a panicking test leaves no stale override.
        struct Reset(usize);
        impl Drop for Reset {
            fn drop(&mut self) {
                INSTALLED.with(|c| c.set(self.0));
            }
        }
        let _reset = Reset(previous);
        f()
    }

    /// [`join`] under this pool's thread count.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        self.install(|| join(a, b))
    }
}

/// Run two closures, potentially in parallel, and return both results.
///
/// `b` is offered to a freshly spawned thread while the calling thread runs
/// `a`; if only one thread is configured, both run sequentially on the
/// caller. Either way `(a's result, b's result)` comes back in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        let rb = match handle.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Map `f` over `items` on up to `current_num_threads()` OS threads and
/// return the results **in input order**.
///
/// This is the single execution primitive behind every parallel-iterator
/// adapter. Items are dealt into per-worker deques (contiguous input
/// slices) and balanced by work stealing: owners front-pop small chunks of
/// their own deque, thieves take the back half of a victim's. Scheduling
/// only decides *who runs what*; each worker records `(index, result)`
/// pairs locally and the caller stitches them back into input order
/// afterwards, so the returned `Vec` is identical for every thread count.
/// A panic in `f` is propagated to the caller after the scope unwinds.
pub fn run_indexed<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Every thread participating in this region — spawned workers *and* the
    // caller — runs items with the thread count pinned to 1, so parallel
    // operations nested inside an item execute sequentially instead of
    // spawning their own full complement of threads. This keeps the total
    // OS-thread count bounded by the configured pool size (a 2-thread pool
    // whose items each contain an inner `par_iter` stays at 2 threads, not
    // 2 × default), at the cost of no nested parallelism — the right trade
    // for this workspace, where the outer grid is the scalable dimension.
    struct PinSequential(usize);
    impl PinSequential {
        fn engage() -> Self {
            PinSequential(INSTALLED.with(|c| c.replace(1)))
        }
    }
    impl Drop for PinSequential {
        fn drop(&mut self) {
            INSTALLED.with(|c| c.set(self.0));
        }
    }

    // Per-worker chunked deques with work stealing. Worker `w` starts owning
    // the contiguous input slice `[w·n/T, (w+1)·n/T)` — for this workspace's
    // grids that is a whole run of seeds or policies, so owners mostly work
    // through their own deque with zero cross-thread traffic. An owner
    // front-pops up to `chunk` items per refill; a worker whose deque is
    // empty steals the *back half* of the first non-empty victim's deque
    // (scanning from its own index), so stragglers shed the work they have
    // not started yet in one lock acquisition rather than item by item.
    let chunk = (n / (threads * 4)).max(1);
    let deques: Vec<Mutex<VecDeque<(usize, T)>>> = {
        let mut split: Vec<VecDeque<(usize, T)>> = (0..threads).map(|_| VecDeque::new()).collect();
        for (idx, item) in items.into_iter().enumerate() {
            split[idx * threads / n].push_back((idx, item));
        }
        split.into_iter().map(Mutex::new).collect()
    };
    let poisoned = AtomicBool::new(false);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);

    let worker = |me: usize, out: &mut Vec<(usize, R)>| {
        let mut batch: VecDeque<(usize, T)> = VecDeque::new();
        loop {
            if poisoned.load(Ordering::Relaxed) {
                return;
            }
            let Some((idx, item)) = batch.pop_front() else {
                // Refill from the front of our own deque…
                {
                    let mut own = match deques[me].lock() {
                        Ok(g) => g,
                        Err(_) => return, // another worker panicked mid-access
                    };
                    let take = chunk.min(own.len());
                    batch.extend(own.drain(..take));
                }
                // …or steal the back half of the first non-empty victim.
                if batch.is_empty() {
                    for offset in 1..threads {
                        let mut victim = match deques[(me + offset) % threads].lock() {
                            Ok(g) => g,
                            Err(_) => return,
                        };
                        let keep = victim.len() / 2;
                        batch.extend(victim.drain(keep..));
                        if !batch.is_empty() {
                            break;
                        }
                    }
                }
                if batch.is_empty() {
                    return; // every deque is drained — the region is done
                }
                continue;
            };
            // If `f` panics the flag stops the other workers promptly; the
            // panic itself is rethrown when the scope joins this thread.
            struct Poison<'a>(&'a AtomicBool, bool);
            impl Drop for Poison<'_> {
                fn drop(&mut self) {
                    if !self.1 {
                        self.0.store(true, Ordering::Relaxed);
                    }
                }
            }
            let mut guard = Poison(&poisoned, false);
            let result = f(item);
            guard.1 = true;
            drop(guard);
            out.push((idx, result));
        }
    };

    std::thread::scope(|scope| {
        let worker = &worker;
        let mut handles = Vec::with_capacity(threads - 1);
        for me in 1..threads {
            handles.push(scope.spawn(move || {
                let _pin = PinSequential::engage();
                let mut out = Vec::new();
                worker(me, &mut out);
                out
            }));
        }
        // The calling thread participates instead of blocking idle.
        let mut own = Vec::new();
        {
            let _pin = PinSequential::engage();
            worker(0, &mut own);
        }
        buckets.push(own);
        for handle in handles {
            match handle.join() {
                Ok(out) => buckets.push(out),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    // Deterministic ordered reduction: scheduling decided which worker ran
    // which item, but the output is reassembled purely by input index.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (idx, result) in buckets.into_iter().flatten() {
        debug_assert!(slots[idx].is_none(), "item {idx} produced twice");
        slots[idx] = Some(result);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every item produced exactly one result"))
        .collect()
}

/// Run `f(index, &mut item)` over a mutable slice on up to
/// `current_num_threads()` OS threads — the scoped dispatch primitive of the
/// sharded simulation engine, which hands each worker exclusive `&mut`
/// access to one shard's state for the duration of a lookahead window.
///
/// This is [`run_indexed`] over the slice's `&mut` references: the borrow
/// checker guarantees the items are disjoint, work stealing balances uneven
/// batch sizes, and because each item is mutated by exactly one worker (and
/// the scope joins every thread before returning) the slice contents
/// afterwards are independent of the thread count and of scheduling — the
/// property that lets a window's shard batches run concurrently without
/// perturbing deterministic simulation output.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let refs: Vec<(usize, &mut T)> = items.iter_mut().enumerate().collect();
    run_indexed(refs, |(idx, item)| f(idx, item));
}
