//! Parallel-iterator adapters over the [`run_indexed`](crate::pool::run_indexed)
//! execution primitive.
//!
//! The shape mirrors `rayon::iter`: conversion traits (`IntoParallelIterator`
//! for owned collections, `IntoParallelRefIterator` for borrowed ones)
//! produce a [`ParIter`]; [`ParIter::map`] stays lazy ([`ParMap`]) until a
//! consumer ([`ParMap::collect`], [`ParMap::sum`], [`ParMap::reduce`],
//! [`ParMap::for_each`]) drives the pipeline across threads. Unlike upstream
//! rayon the input is materialized into a `Vec` up front — every call site in
//! this workspace iterates small collections of coarse work items, where the
//! copy is noise.
//!
//! **Determinism contract:** every consumer produces results in input order
//! (or folds them in input order), regardless of thread count or scheduling.

use crate::pool::run_indexed;

/// A parallel iterator over an owned sequence of items.
///
/// Created through [`IntoParallelIterator::into_par_iter`] or
/// [`IntoParallelRefIterator::par_iter`].
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Number of items the pipeline will process.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there is nothing to process.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Transform every item with `f` on the pool (lazy: nothing runs until a
    /// consumer is called).
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Keep only items matching `pred` (applied eagerly, in order — the
    /// filter itself is cheap; the parallel work is what follows it).
    pub fn filter<P>(self, pred: P) -> ParIter<T>
    where
        P: Fn(&T) -> bool,
    {
        ParIter {
            items: self.items.into_iter().filter(|t| pred(t)).collect(),
        }
    }

    /// Run `f` on every item in parallel (results discarded).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_indexed(self.items, f);
    }

    /// Collect the items (in input order). Useful after [`ParIter::filter`].
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<T>,
    {
        self.items.into_iter().collect()
    }

    /// Sum the items in input order.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// A lazy parallel map: the result of [`ParIter::map`].
///
/// Consumers evaluate `f` over the items on up to
/// [`current_num_threads`](crate::pool::current_num_threads) OS threads and
/// recombine the results **in input order**.
#[derive(Debug)]
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Chain another transformation (fused into one parallel pass).
    pub fn map<R2, G>(self, g: G) -> ParMap<T, impl Fn(T) -> R2 + Sync>
    where
        R2: Send,
        G: Fn(R) -> R2 + Sync,
    {
        let f = self.f;
        ParMap {
            items: self.items,
            f: move |t| g(f(t)),
        }
    }

    /// Evaluate in parallel and collect the results in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        run_indexed(self.items, self.f).into_iter().collect()
    }

    /// Evaluate in parallel and sum the results, folding in input order (so
    /// float sums are bit-identical across thread counts).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        run_indexed(self.items, self.f).into_iter().sum()
    }

    /// Evaluate in parallel, then fold the results **in input order** with
    /// `op`, starting from `identity()`.
    pub fn reduce<OP, ID>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R,
        OP: Fn(R, R) -> R,
    {
        run_indexed(self.items, self.f)
            .into_iter()
            .fold(identity(), op)
    }

    /// Evaluate in parallel, discarding the results.
    pub fn for_each(self) {
        run_indexed(self.items, self.f);
    }

    /// Evaluate in parallel and count the results.
    pub fn count(self) -> usize {
        run_indexed(self.items, self.f).len()
    }
}

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// `par_iter()` for borrowed collections.
pub trait IntoParallelRefIterator<'data> {
    /// The element type (a shared reference).
    type Item: Send + 'data;
    /// Iterate over shared references in parallel.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}
