//! Vendored `rayon`: a real multi-threaded data-parallelism library exposing
//! the API slice this workspace uses.
//!
//! Until PR 2 this crate was a *sequential* shim (the `par_iter` traits
//! mapped onto plain std iterators). It is now an actual thread-pool
//! implementation: parallel operations fan work out to OS threads (chunked
//! work-stealing deques — each worker owns a contiguous input slice and
//! idle workers steal the back half of a straggler's; the caller
//! participates) and recombine results **in input order**, so any program
//! output is independent of thread count and scheduling — the property the
//! simulator's fixed-seed reproducibility relies on. See [`pool`] for the
//! execution engine and [`iter`] for the iterator adapters.
//!
//! Supported surface:
//!
//! * [`prelude`] — `into_par_iter()` / `par_iter()` plus the `map` /
//!   `filter` / `collect` / `sum` / `reduce` / `for_each` adapters;
//! * [`join`] — potentially-parallel two-way fork/join;
//! * [`ThreadPoolBuilder`] / [`ThreadPool`] — explicit thread-count
//!   configuration (`build_global`, or scoped via `ThreadPool::install`);
//! * `RAYON_NUM_THREADS` — environment default, read once per process;
//! * [`current_num_threads`] — the count parallel operations will use.
//!
//! ## Determinism contract
//!
//! For any pipeline `xs.par_iter().map(f).collect::<Vec<_>>()` the output
//! equals the sequential `xs.iter().map(f).collect()` — same order, same
//! values — for every thread count, provided `f` itself is deterministic.
//! Reductions (`sum`, `reduce`) fold the mapped results in input order, so
//! even non-associative floating-point folds are bit-identical across thread
//! counts.

pub mod iter;
pub mod pool;

pub use pool::{
    current_num_threads, join, par_for_each_mut, ThreadPool, ThreadPoolBuildError,
    ThreadPoolBuilder,
};

/// The traits and adapters, mirrored from `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn collect_preserves_input_order_across_thread_counts() {
        let input: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8] {
            let got: Vec<u64> =
                pool(threads).install(|| input.par_iter().map(|&x| x * x + 1).collect());
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn float_sum_is_bit_identical_across_thread_counts() {
        // Non-associative fold: only deterministic input-order reduction
        // makes these equal bit-for-bit.
        let xs: Vec<f64> = (1..500).map(|i| 1.0 / i as f64).collect();
        let seq: f64 = xs.iter().map(|x| x.sin()).sum();
        for threads in [1, 2, 5] {
            let par: f64 = pool(threads).install(|| xs.par_iter().map(|x| x.sin()).sum());
            assert_eq!(par.to_bits(), seq.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn work_actually_overlaps_in_time() {
        // Eight 20 ms sleeps on 8 threads must take well under the 160 ms a
        // sequential executor needs (sleeps overlap even on one core).
        let t0 = Instant::now();
        pool(8).install(|| {
            (0..8u32)
                .into_par_iter()
                .for_each(|_| std::thread::sleep(Duration::from_millis(20)))
        });
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(120),
            "8 × 20 ms sleeps took {elapsed:?}; the pool is not parallel"
        );
    }

    #[test]
    fn multiple_os_threads_are_used() {
        let counter = AtomicUsize::new(0);
        let ids: std::collections::HashSet<std::thread::ThreadId> = pool(4).install(|| {
            (0..64u32)
                .into_par_iter()
                .map(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    // Give other workers a chance to pull items.
                    std::thread::sleep(Duration::from_millis(1));
                    std::thread::current().id()
                })
                .collect()
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert!(
            ids.len() > 1,
            "64 sleepy items on 4 threads must involve more than one OS thread"
        );
    }

    #[test]
    fn par_for_each_mut_mutates_disjoint_items_across_threads() {
        // The sharded engine's window dispatch: each item (a shard's state)
        // is mutated by exactly one worker, results land in place, and on a
        // multi-thread pool the batch must actually spread over >1 OS
        // thread. The recorded ThreadIds prove handler batches execute
        // concurrently, not merely through a parallel-looking API.
        let mut items: Vec<(u64, Option<std::thread::ThreadId>)> =
            (0..64).map(|i| (i, None)).collect();
        pool(4).install(|| {
            par_for_each_mut(&mut items, |idx, item| {
                std::thread::sleep(Duration::from_millis(1));
                item.0 += idx as u64;
                item.1 = Some(std::thread::current().id());
            })
        });
        let ids: std::collections::HashSet<_> = items.iter().map(|it| it.1.unwrap()).collect();
        assert!(
            ids.len() > 1,
            "64 sleepy shard batches on 4 threads must involve more than one OS thread"
        );
        for (idx, item) in items.iter().enumerate() {
            assert_eq!(item.0, 2 * idx as u64, "each item mutated exactly once");
        }
        // Thread count 1 runs in place with no spawns and the same result.
        let mut serial: Vec<(u64, Option<std::thread::ThreadId>)> =
            (0..64).map(|i| (i, None)).collect();
        pool(1).install(|| {
            par_for_each_mut(&mut serial, |idx, item| {
                item.0 += idx as u64;
                item.1 = Some(std::thread::current().id());
            })
        });
        assert!(serial
            .iter()
            .all(|it| it.1 == Some(std::thread::current().id())));
    }

    #[test]
    fn idle_workers_steal_from_stragglers() {
        // The initial deal is contiguous: on 2 threads, worker 0 owns the
        // first half of the input — here, all four slow items. Without
        // stealing the region would take ~4 × 25 ms on worker 0 alone;
        // with back-half stealing the idle worker takes roughly half the
        // slow items, so the region finishes in well under the no-stealing
        // wall clock. Output order must be unaffected either way.
        let input: Vec<u64> = (0..8).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * 10).collect();
        let t0 = Instant::now();
        let got: Vec<u64> = pool(2).install(|| {
            input
                .par_iter()
                .map(|&x| {
                    if x < 4 {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    x * 10
                })
                .collect()
        });
        let elapsed = t0.elapsed();
        assert_eq!(got, expected);
        assert!(
            elapsed < Duration::from_millis(85),
            "4 × 25 ms items dealt to one worker took {elapsed:?}; stealing is not happening"
        );
    }

    #[test]
    fn join_returns_results_in_order() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
        let (a, b) = pool(1).join(|| 40 + 2, || vec![1, 2, 3]);
        assert_eq!(a, 42);
        assert_eq!(b, vec![1, 2, 3]);
    }

    #[test]
    fn reduce_folds_in_input_order() {
        // String concatenation is order-sensitive.
        let words = ["a", "b", "c", "d", "e"];
        for threads in [1, 4] {
            let joined: String = pool(threads).install(|| {
                words
                    .par_iter()
                    .map(|w| w.to_string())
                    .reduce(String::new, |mut acc, w| {
                        acc.push_str(&w);
                        acc
                    })
            });
            assert_eq!(joined, "abcde", "threads={threads}");
        }
    }

    #[test]
    fn filter_and_count_work() {
        let n = (0..100u32)
            .into_par_iter()
            .filter(|x| x % 3 == 0)
            .map(|x| x * 2)
            .count();
        assert_eq!(n, 34);
        let evens: Vec<u32> = (0..10u32).into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(evens, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn install_scopes_nest_and_restore() {
        let outer = pool(3);
        let inner = pool(2);
        outer.install(|| {
            assert_eq!(current_num_threads(), 3);
            inner.install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let total: u64 = pool(2).install(|| {
            (0..4u64)
                .into_par_iter()
                .map(|i| {
                    // Inner parallel op on a worker thread.
                    (0..8u64)
                        .into_par_iter()
                        .map(move |j| i * 100 + j)
                        .sum::<u64>()
                })
                .sum()
        });
        let expected: u64 = (0..4u64)
            .map(|i| (0..8u64).map(|j| i * 100 + j).sum::<u64>())
            .sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn nested_regions_stay_within_the_pool_bound() {
        // Inside a parallel region the thread count is pinned to 1, so
        // nested pipelines run sequentially on their worker instead of
        // spawning a full complement each.
        let inner_counts: Vec<usize> = pool(4).install(|| {
            (0..8u32)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert!(
            inner_counts.iter().all(|&n| n == 1),
            "items inside a parallel region must see a 1-thread bound, got {inner_counts:?}"
        );
        // …and the bound is restored once the region ends.
        let p = pool(4);
        p.install(|| {
            let _: Vec<u32> = (0..4u32).into_par_iter().map(|x| x).collect();
            assert_eq!(current_num_threads(), 4);
        });
    }

    #[test]
    fn empty_and_single_item_pipelines() {
        let empty: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x + 1).collect();
        assert!(empty.is_empty());
        let one: Vec<u32> = vec![41u32].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            pool(4).install(|| {
                (0..16u32)
                    .into_par_iter()
                    .map(|i| {
                        if i == 7 {
                            panic!("boom");
                        }
                        i
                    })
                    .for_each()
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }
}
