//! Vendored minimal `rayon` shim: the parallel-iterator entry points the
//! workspace uses (`par_iter`, `into_par_iter`) mapped onto *sequential*
//! standard iterators. Every call site owns its data and is deterministic, so
//! the sequential execution is observably identical (and single-threaded
//! execution keeps fixed-seed runs exactly reproducible).

/// The traits, mirrored from `rayon::prelude`.
pub mod prelude {
    /// `into_par_iter()` for owned collections and ranges.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item;
        /// The (sequential) iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Convert into a "parallel" iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter()` for borrowed collections.
    pub trait IntoParallelRefIterator<'data> {
        /// The element type.
        type Item: 'data;
        /// The (sequential) iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterate over shared references.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }
}
