//! Vendored minimal `proptest` shim.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with `arg in strategy` bindings, range strategies over integers and
//! floats, `any::<T>()`, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros. Inputs are drawn from a deterministic RNG seeded by
//! the test name, so failures are reproducible; there is no shrinking.

use std::marker::PhantomData;
use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash used to derive a per-test seed from its name.
pub fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A source of random values of one type.
pub trait Strategy {
    /// The produced type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                if span == 0 { return self.start; }
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Assert inside a property (panics with the case's inputs on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests: each function runs `cases` times with fresh inputs
/// drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::new($crate::fnv(concat!(module_path!(), "::", stringify!($name))));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Mirror of `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}
