//! Vendored minimal serde shim.
//!
//! The build environment is fully offline (no crates.io access), so the
//! workspace carries this small API-compatible stand-in for the slice of
//! serde it uses: `#[derive(Serialize, Deserialize)]` on non-generic structs
//! and enums, driven through a simple owned [`Value`] data model that
//! `serde_json` (also vendored) renders to and parses from JSON text.
//!
//! The data model matches real serde's JSON representation for the shapes the
//! workspace uses: structs are objects, newtype structs are transparent,
//! enums are externally tagged, `Option` is `null`/value.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An owned, JSON-shaped value: the intermediate data model between typed
/// Rust values and serialized text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    UInt(u128),
    /// A negative integer.
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (field order preserved).
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The fields of an object, in declaration order.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Interpret a single-key object as an externally tagged enum variant.
    pub fn as_variant(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(fields) if fields.len() == 1 => {
                Some((fields[0].0.as_str(), &fields[0].1))
            }
            _ => None,
        }
    }
}

/// Look up a field of an object, yielding `Null` when absent (so `Option`
/// fields deserialize to `None` and required fields produce a type error).
pub fn obj_field<'a>(fields: &'a [(String, Value)], name: &str) -> &'a Value {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Index into an array, yielding `Null` when out of bounds.
pub fn arr_item(items: &[Value], index: usize) -> &Value {
    items.get(index).unwrap_or(&NULL)
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the intermediate data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Convert from the intermediate data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// -- integers ---------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u128) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    // A whole float (e.g. "1e3") converts through u128 so the
                    // target-type range check still applies instead of a
                    // silently saturating cast.
                    Value::Float(f)
                        if f.fract() == 0.0 && *f >= 0.0 && *f < u128::MAX as f64 =>
                    {
                        <$t>::try_from(*f as u128).map_err(|_| {
                            Error::msg(concat!("float out of range for ", stringify!($t)))
                        })
                    }
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 { Value::UInt(*self as u128) } else { Value::Int(*self as i128) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::Float(f)
                        if f.fract() == 0.0
                            && *f > i128::MIN as f64
                            && *f < i128::MAX as f64 =>
                    {
                        <$t>::try_from(*f as i128).map_err(|_| {
                            Error::msg(concat!("float out of range for ", stringify!($t)))
                        })
                    }
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, u128, usize);
impl_int!(i8, i16, i32, i64, i128, isize);

// -- floats -----------------------------------------------------------------

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    // Non-finite floats serialize as null (as in serde_json).
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

// -- other scalars ----------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

// -- compound types ---------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::msg("expected tuple array"))?;
                Ok(($($t::from_value(arr_item(items, $n))?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize + fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize + fmt::Display, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}
