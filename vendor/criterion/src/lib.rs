//! Vendored minimal `criterion` shim.
//!
//! Implements the benchmark-definition API the workspace's bench targets use
//! (`criterion_group!`, `criterion_main!`, groups, throughput, parameterized
//! benches) with a simple wall-clock harness: a warm-up phase, then timed
//! batches, reporting mean time per iteration and derived throughput.
//!
//! Like the real crate, running the bench binary without `--bench` (which is
//! what `cargo test` does for `harness = false` targets) executes every
//! benchmark body exactly once as a smoke test instead of measuring.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The measurement configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = !std::env::args().any(|a| a == "--bench");
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            test_mode,
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the target measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Set the warm-up time per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Run a standalone benchmark (an implicit single-entry group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.benchmark_group(id.id.clone()).bench_function("run", f);
        self
    }
}

/// A group of related benchmarks sharing throughput/config annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Run a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, &mut f);
        self
    }

    /// Run a benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            warm_up: self.criterion.warm_up_time,
            measurement: self.criterion.measurement_time,
            samples: self.sample_size.unwrap_or(self.criterion.sample_size),
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        if bencher.test_mode {
            println!("test {full} ... ok (smoke)");
            return;
        }
        let mean = bencher.mean_ns;
        let thr = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  thrpt: {:.0} elem/s", n as f64 * 1e9 / mean)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!(
                    "  thrpt: {:.1} MiB/s",
                    n as f64 * 1e9 / mean / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "bench {full}: {:.1} ns/iter ({} iters){thr}",
            mean, bencher.iters
        );
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to benchmark bodies; `iter` runs and times the hot closure.
pub struct Bencher {
    test_mode: bool,
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measure a closure. In test mode (no `--bench` flag) it runs once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std_black_box(f());
            self.iters = 1;
            return;
        }
        // Warm-up while estimating per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            std_black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Size batches so all samples fit in the measurement window.
        let total_iters =
            ((self.measurement.as_secs_f64() / per_iter.max(1e-9)) as u64).max(self.samples as u64);
        let batch = (total_iters / self.samples as u64).max(1);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            total += t0.elapsed();
            iters += batch;
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// Define a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
