//! Vendored minimal `serde_json`: renders the serde shim's `Value` data
//! model to JSON text and parses JSON text back (offline build environment).

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip Display is valid JSON (no
                // exponent form is ever produced for finite values).
                let _ = write!(out, "{f}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::msg(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::msg("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self.read_hex4(self.pos + 1)?;
                            self.pos += 4;
                            if (0xD800..0xDC00).contains(&hex) {
                                // High surrogate: must pair with `\uDC00..`.
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return Err(Error::msg("unpaired surrogate in \\u escape"));
                                }
                                let low = self.read_hex4(self.pos + 3)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::msg("invalid low surrogate in \\u escape"));
                                }
                                self.pos += 6;
                                let code = 0x10000 + ((hex - 0xD800) << 10) + (low - 0xDC00);
                                s.push(char::from_u32(code).expect("valid surrogate pair"));
                            } else {
                                s.push(
                                    char::from_u32(hex)
                                        .ok_or_else(|| Error::msg("lone low surrogate"))?,
                                );
                            }
                        }
                        _ => return Err(Error::msg("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    /// Four hex digits starting at `at` (does not advance the cursor).
    fn read_hex4(&self, at: usize) -> Result<u32, Error> {
        self.bytes
            .get(at..at + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| Error::msg("bad \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(n) = rest.parse::<u128>() {
                    return Ok(Value::Int(-(n as i128)));
                }
            } else if let Ok(n) = text.parse::<u128>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surrogate_pairs_decode_to_non_bmp_chars() {
        let s: String = from_str("\"flash-sale \\ud83d\\udd25\"").unwrap();
        assert_eq!(s, "flash-sale \u{1F525}");
    }

    #[test]
    fn lone_surrogates_are_rejected() {
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
        assert!(from_str::<String>("\"\\udd25\"").is_err());
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err());
    }

    #[test]
    fn whole_floats_range_check_into_integers() {
        assert_eq!(from_str::<u32>("1e3").unwrap(), 1000);
        assert!(from_str::<u32>("1e30").is_err(), "must not saturate");
        assert_eq!(from_str::<i64>("-1e3").unwrap(), -1000);
        assert!(from_str::<i8>("-1e3").is_err());
    }

    #[test]
    fn non_ascii_round_trips() {
        let original = "naïve café — 🔥".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
    }
}
