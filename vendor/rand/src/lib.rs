//! Vendored minimal `rand` shim: just the core traits the workspace RNG
//! implements (`RngCore`, `SeedableRng`) — no generators, no distributions.

use std::fmt;

/// Error type for fallible randomness (never produced by this workspace).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core random number generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Generators that can be constructed from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed;
    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Build from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience alias so `rand::Rng` bounds keep compiling.
pub trait Rng: RngCore {}
impl<R: RngCore + ?Sized> Rng for R {}
