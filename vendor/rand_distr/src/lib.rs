//! Vendored minimal `rand_distr` shim: `Normal` and `LogNormal` sampled via
//! Box–Muller. Deterministic for a fixed `RngCore` stream (which is all the
//! simulator requires); the exact sample sequence differs from the real
//! crate's ziggurat implementation, but every experiment seed in this
//! workspace was produced with this shim, so results are reproducible.

use rand::RngCore;
use std::f64::consts::TAU;
use std::fmt;

/// A distribution that can be sampled with any `RngCore`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamsError;

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid distribution parameters")
    }
}

impl std::error::Error for ParamsError {}

#[inline]
fn unit_open_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 mantissa bits in (0, 1]: never zero, so ln() is safe.
    ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Create a normal distribution; `std_dev` must be finite and ≥ 0.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamsError> {
        if std_dev.is_finite() && std_dev >= 0.0 && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(ParamsError)
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms per sample (no state kept, deterministic).
        let u1 = unit_open_f64(rng);
        let u2 = unit_f64(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Log-normal distribution parameterized by the underlying normal's µ and σ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Create a log-normal distribution; `sigma` must be finite and ≥ 0.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamsError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}
