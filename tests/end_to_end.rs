//! Cross-crate integration tests: full experiments exercising the public API
//! the way the paper's evaluation does (workload → cluster → monitor →
//! adaptive policy → report), asserting the qualitative shapes the paper
//! reports rather than absolute numbers.

use concord::prelude::*;
use concord::PolicySpec;

/// A small but non-trivial experiment on the Grid'5000-like cost platform.
fn experiment(seed: u64, ops: u64) -> Experiment {
    let platform = concord::platforms::grid5000_cost(0.15);
    let mut workload = presets::paper_heavy_read_update(2_000, ops);
    workload.field_count = 1;
    workload.field_length = 1_000;
    Experiment::new(platform, workload)
        .with_clients(16)
        .with_adaptation_interval(SimDuration::from_millis(100))
        .with_seed(seed)
}

#[test]
fn consistency_performance_staleness_tradeoff_holds() {
    let exp = experiment(1, 10_000);
    let reports = exp.compare(&[PolicySpec::Eventual, PolicySpec::Quorum, PolicySpec::Strong]);
    let (eventual, quorum, strong) = (&reports[0], &reports[1], &reports[2]);

    // Throughput: weaker consistency is faster.
    assert!(eventual.throughput_ops_per_sec > quorum.throughput_ops_per_sec);
    assert!(eventual.throughput_ops_per_sec > strong.throughput_ops_per_sec);

    // Staleness: only the weak level shows stale reads; strong and quorum
    // (R+W>N) never do.
    assert!(eventual.stale_read_rate > 0.0);
    assert_eq!(quorum.stale_reads, 0);
    assert_eq!(strong.stale_reads, 0);

    // Latency: reading every replica costs more than reading one.
    assert!(strong.read_latency_ms.p50 > eventual.read_latency_ms.p50);

    // Every run completed the full workload.
    for r in &reports {
        assert_eq!(r.total_ops, 10_000, "{}", r.policy);
        assert_eq!(r.timeouts, 0, "{}", r.policy);
    }
}

#[test]
fn harmony_keeps_staleness_under_tolerance_while_outperforming_strong() {
    let exp = experiment(2, 12_000);
    let reports = exp.compare(&[
        PolicySpec::Eventual,
        PolicySpec::Strong,
        PolicySpec::Harmony { tolerance: 0.40 },
        PolicySpec::Harmony { tolerance: 0.05 },
    ]);
    let eventual = &reports[0];
    let strong = &reports[1];
    let harmony40 = &reports[2];
    let harmony5 = &reports[3];

    // The tolerance is honoured (ground-truth oracle measurement).
    assert!(
        harmony40.stale_read_rate <= 0.40 + 0.02,
        "harmony(40%) measured {}",
        harmony40.stale_read_rate
    );
    assert!(
        harmony5.stale_read_rate <= 0.05 + 0.02,
        "harmony(5%) measured {}",
        harmony5.stale_read_rate
    );

    // Harmony reduces stale reads dramatically compared to eventual
    // consistency (the paper reports ~80%).
    assert!(
        harmony40.stale_read_rate < eventual.stale_read_rate * 0.5,
        "harmony {} vs eventual {}",
        harmony40.stale_read_rate,
        eventual.stale_read_rate
    );

    // And improves throughput over static strong consistency.
    assert!(
        harmony40.throughput_ops_per_sec > strong.throughput_ops_per_sec,
        "harmony {} vs strong {}",
        harmony40.throughput_ops_per_sec,
        strong.throughput_ops_per_sec
    );

    // Harmony actually adapted (it is not a static policy in disguise).
    assert!(harmony40.adaptation_steps > 2);
    assert!(harmony40.mean_read_replicas > 1.0);
    assert!(harmony40.mean_read_replicas < 5.0);
}

#[test]
fn cost_decreases_as_consistency_weakens() {
    let exp = experiment(3, 10_000);
    let rf = exp.platform.cluster.replication_factor;
    let specs: Vec<PolicySpec> = (1..=rf).map(PolicySpec::FixedReadReplicas).collect();
    let reports = exp.compare(&specs);

    // Total cost is non-decreasing in the read level, and the gap between
    // ONE and ALL is substantial (the paper reports up to 48%).
    let costs: Vec<f64> = reports.iter().map(|r| r.total_cost_usd()).collect();
    for pair in costs.windows(2) {
        assert!(
            pair[1] >= pair[0] * 0.95,
            "cost should not drop when the level rises: {costs:?}"
        );
    }
    let reduction = 1.0 - costs[0] / costs[(rf - 1) as usize];
    assert!(
        reduction > 0.20,
        "weakest level should cut the bill substantially, got {:.1}% ({costs:?})",
        reduction * 100.0
    );

    // Staleness decreases as the level rises; the strongest level is clean.
    let stale: Vec<f64> = reports.iter().map(|r| r.stale_read_rate).collect();
    assert!(stale[0] > 0.0);
    assert_eq!(reports[(rf - 1) as usize].stale_reads, 0);
    for pair in stale.windows(2) {
        assert!(
            pair[1] <= pair[0] + 0.02,
            "staleness must shrink: {stale:?}"
        );
    }

    // Every bill decomposes into the paper's three parts.
    for r in &reports {
        let bill = r.bill.expect("pricing was supplied");
        assert!(bill.instances_usd > 0.0);
        assert!(bill.storage_usd > 0.0);
        assert!(bill.total() >= bill.instances_usd);
    }
}

#[test]
fn bismar_is_cheaper_than_quorum_with_low_staleness() {
    let exp = experiment(4, 12_000);
    let reports = exp.compare(&[
        PolicySpec::FixedReadReplicas(1),
        PolicySpec::Quorum,
        PolicySpec::Bismar,
    ]);
    let one = &reports[0];
    let quorum = &reports[1];
    let bismar = &reports[2];

    // Bismar undercuts the static quorum bill…
    assert!(
        bismar.total_cost_usd() < quorum.total_cost_usd(),
        "bismar ${} vs quorum ${}",
        bismar.total_cost_usd(),
        quorum.total_cost_usd()
    );
    // …while keeping staleness far below the weakest level's.
    assert!(
        bismar.stale_read_rate <= 0.20 + 0.02,
        "bismar stale rate {}",
        bismar.stale_read_rate
    );
    assert!(bismar.stale_read_rate <= one.stale_read_rate);
}

#[test]
fn estimator_is_consistent_with_the_measured_oracle() {
    // Run static ONE and compare the oracle-measured stale rate with what the
    // analytic model predicts from the same observed rates: the estimate must
    // be an upper bound of the same order of magnitude (the model is built to
    // be conservative), not wildly off.
    use concord_staleness::{AnalyticEstimator, StaleReadEstimator, StalenessParams};

    let exp = experiment(5, 10_000);
    let report = exp.run_spec(&PolicySpec::Eventual);
    let measured = report.stale_read_rate;
    assert!(measured > 0.0);

    // Reconstruct the model inputs from the run report.
    let ops_per_sec = report.throughput_ops_per_sec;
    let write_rate = ops_per_sec * (report.writes as f64 / report.total_ops as f64);
    let read_rate = ops_per_sec - write_rate;
    let params = StalenessParams::basic(
        exp.platform.cluster.replication_factor,
        1,
        1,
        read_rate,
        write_rate,
        report.write_latency_ms.p50,
        // The propagation time to the remote site dominates.
        exp.platform.cluster.network.inter_dc.mean_ms() + report.write_latency_ms.p50,
    );
    let estimate = AnalyticEstimator::new()
        .estimate(&params)
        .stale_read_probability;

    assert!(
        estimate >= measured * 0.5,
        "the estimate ({estimate:.3}) should not underestimate the measured rate ({measured:.3}) by more than 2×"
    );
    assert!(estimate <= 1.0);
}

#[test]
fn reports_serialize_for_downstream_tooling() {
    let exp = experiment(6, 4_000);
    let report = exp.run_spec(&PolicySpec::Harmony { tolerance: 0.2 });
    let json = report.to_json();
    let parsed: concord_core::RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed, report);
    let table = render_table("integration", &[report]);
    assert!(table.contains("harmony"));
}
