//! Cross-crate property-based tests (proptest): invariants of the consistency
//! machinery that must hold for *any* workload mix, key distribution,
//! consistency level, cluster shape or monitored state.

use concord_cluster::{Cluster, ClusterConfig, ConsistencyLevel};
use concord_core::{ConsistencyPolicy, HarmonyPolicy};
use concord_sim::{RegionId, SimDuration, SimTime, Topology};
use concord_staleness::{AnalyticEstimator, LevelSolver, StaleReadEstimator, StalenessParams};
use proptest::prelude::*;

fn two_site_cluster(nodes: usize, rf: u32, seed: u64) -> Cluster {
    let mut cfg = ClusterConfig::lan_test(nodes, rf);
    cfg.topology = Topology::spread(nodes, &[("a", RegionId(0)), ("b", RegionId(0))]);
    cfg.network = concord_sim::NetworkModel::grid5000_like();
    cfg.strategy = concord_cluster::ReplicationStrategy::NetworkTopology;
    Cluster::new(cfg, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any interleaving of writes and reads over any keys, quorum reads
    /// combined with quorum writes (R + W > N) never return stale data.
    #[test]
    fn quorum_reads_are_never_stale(
        seed in 0u64..1_000,
        keys in 1u64..20,
        ops in 50u64..400,
        gap_us in 50u64..5_000,
    ) {
        let mut cluster = two_site_cluster(6, 5, seed);
        cluster.load_records((0..keys).map(|k| (k, 256)));
        cluster.set_levels(ConsistencyLevel::Quorum, ConsistencyLevel::Quorum);
        let mut at = SimTime::ZERO;
        for i in 0..ops {
            at += SimDuration::from_micros(gap_us);
            if i % 2 == 0 {
                cluster.submit_write_at(i % keys, 256, at);
            } else {
                cluster.submit_read_at(i % keys, at);
            }
        }
        cluster.run_to_completion(10_000_000);
        prop_assert_eq!(cluster.oracle().stale_reads(), 0);
        prop_assert_eq!(cluster.metrics().timeouts, 0);
    }

    /// Reading every replica (ALL) is never stale either, no matter how weak
    /// the writes are.
    #[test]
    fn read_all_is_never_stale(
        seed in 0u64..1_000,
        keys in 1u64..10,
        ops in 50u64..300,
    ) {
        let mut cluster = two_site_cluster(6, 3, seed);
        cluster.load_records((0..keys).map(|k| (k, 128)));
        cluster.set_levels(ConsistencyLevel::All, ConsistencyLevel::One);
        let mut at = SimTime::ZERO;
        for i in 0..ops {
            at += SimDuration::from_micros(300);
            if i % 3 == 0 {
                cluster.submit_write_at(i % keys, 128, at);
            } else {
                cluster.submit_read_at(i % keys, at);
            }
        }
        cluster.run_to_completion(10_000_000);
        prop_assert_eq!(cluster.oracle().stale_reads(), 0);
    }

    /// The analytic stale-read estimate is a probability, decreases (weakly)
    /// in the read level and increases (weakly) in the write rate.
    #[test]
    fn estimator_monotonicity(
        rf in 2u32..8,
        write_rate in 0.0f64..5_000.0,
        read_rate in 1.0f64..5_000.0,
        first_ms in 0.0f64..5.0,
        prop_ms in 0.0f64..200.0,
    ) {
        let est = AnalyticEstimator::new();
        let mut last = f64::INFINITY;
        for r in 1..=rf {
            let params = StalenessParams::basic(rf, r, 1, read_rate, write_rate, first_ms, prop_ms);
            let p = est.estimate(&params).stale_read_probability;
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p <= last + 1e-9, "level {r}: {p} > {last}");
            last = p;
        }
        // Doubling the write rate never decreases the estimate at level ONE.
        let base = StalenessParams::basic(rf, 1, 1, read_rate, write_rate, first_ms, prop_ms);
        let double = StalenessParams::basic(rf, 1, 1, read_rate, write_rate * 2.0, first_ms, prop_ms);
        prop_assert!(
            est.estimate(&double).stale_read_probability + 1e-9
                >= est.estimate(&base).stale_read_probability
        );
    }

    /// The level solver always returns a feasible, minimal level.
    #[test]
    fn solver_returns_minimal_feasible_level(
        rf in 2u32..8,
        write_rate in 0.0f64..3_000.0,
        prop_ms in 0.0f64..150.0,
        tolerance in 0.0f64..1.0,
    ) {
        let params = StalenessParams::basic(rf, 1, 1, 1_000.0, write_rate, 0.5, prop_ms);
        let solver = LevelSolver::new();
        let solution = solver.solve(&params, tolerance);
        prop_assert!(solution.read_level >= 1 && solution.read_level <= rf);
        let estimates = solver.estimate_all_levels(&params);
        // Every level below the chosen one must violate the tolerance.
        for level in 1..solution.read_level {
            prop_assert!(estimates[(level - 1) as usize] > tolerance);
        }
        // The chosen level satisfies it, unless even reading everything fails
        // (impossible under the model, but keep the guard symmetrical).
        prop_assert!(
            solution.estimated_stale_rate <= tolerance || solution.read_level == rf
        );
    }

    /// Harmony's decision is always a valid level and never exceeds the
    /// replication factor, whatever the monitor reports.
    #[test]
    fn harmony_decisions_are_always_valid(
        read_rate in 0.0f64..50_000.0,
        write_rate in 0.0f64..50_000.0,
        prop_ms in 0.0f64..500.0,
        tolerance in 0.0f64..1.0,
    ) {
        let mut harmony = HarmonyPolicy::with_tolerance(tolerance);
        let mut monitor = concord_monitor::AccessMonitor::default();
        let mut snapshot = monitor.snapshot(SimTime::from_secs(1));
        snapshot.read_rate = read_rate;
        snapshot.write_rate = write_rate;
        snapshot.propagation_time_ms = prop_ms;
        snapshot.first_write_time_ms = 0.5;
        snapshot.total_reads = 1 + read_rate as u64;
        snapshot.total_writes = 1 + write_rate as u64;
        let ctx = concord_core::PolicyContext {
            now: SimTime::from_secs(1),
            snapshot,
            profile: concord_core::ClusterProfile {
                replication_factor: 5,
                dc_count: 2,
                replicas_in_local_dc: 3,
                intra_dc_latency_ms: 0.5,
                inter_dc_latency_ms: 12.0,
                node_count: 10,
                record_size_bytes: 1_000,
                storage_service_ms: 0.3,
            },
        };
        let decision = harmony.decide(&ctx);
        let acks = decision.read.required_acks(5, 2);
        prop_assert!((1..=5).contains(&acks));
        let dec = harmony.last_decision().unwrap();
        prop_assert!(dec.estimated_stale_rate <= tolerance + 1e-9 || dec.read_replicas == 5);
    }

    /// Replica placement: for any key — under either partitioner — the
    /// replica set has exactly RF distinct nodes and is spread over both
    /// datacenters when RF ≥ 2 under NetworkTopologyStrategy.
    #[test]
    fn replica_placement_invariants(key in any::<u64>(), rf in 2u32..6) {
        let topo = Topology::spread(8, &[("a", RegionId(0)), ("b", RegionId(0))]);
        for partitioner in [
            concord_cluster::Partitioner::Hash,
            concord_cluster::Partitioner::Ordered,
        ] {
            let ring = concord_cluster::Ring::new(
                &topo,
                rf,
                concord_cluster::ReplicationStrategy::NetworkTopology,
                16,
                partitioner,
            );
            let replicas = ring.replicas(concord_cluster::Key(key));
            prop_assert_eq!(replicas.len(), rf as usize);
            let mut unique = replicas.clone();
            unique.sort();
            unique.dedup();
            prop_assert_eq!(unique.len(), rf as usize);
            let dc_a = replicas.iter().filter(|n| topo.dc_of(**n) == concord_sim::DcId(0)).count();
            prop_assert!(dc_a >= 1 && dc_a < rf as usize, "replicas must span both DCs");
        }
    }
}
