//! Integration test of the behavior-modeling pipeline (§III-C): synthetic
//! application trace → offline model → runtime behavior-driven policy →
//! adaptive run, spanning `concord-workload`, `concord-core` and the
//! experiment API.

use concord::prelude::*;
use concord::PolicySpec;
use concord_core::behavior::PolicyKind;
use concord_workload::SyntheticTraceBuilder;

fn webshop_trace(rng: &mut SimRng) -> concord_workload::Trace {
    let browse = presets::ycsb_b();
    let checkout = presets::ycsb_a();
    SyntheticTraceBuilder::new()
        .add(
            "browse-1",
            SimDuration::from_secs(300),
            80.0,
            browse.clone(),
        )
        .add(
            "checkout-1",
            SimDuration::from_secs(120),
            500.0,
            checkout.clone(),
        )
        .add(
            "browse-2",
            SimDuration::from_secs(300),
            75.0,
            browse.clone(),
        )
        .add("checkout-2", SimDuration::from_secs(120), 520.0, checkout)
        .add("browse-3", SimDuration::from_secs(300), 85.0, browse)
        .build(rng)
}

#[test]
fn offline_model_discovers_interpretable_states() {
    let mut rng = SimRng::new(2024);
    let trace = webshop_trace(&mut rng);
    assert!(
        trace.len() > 50_000,
        "the synthetic trace should be sizable"
    );

    let model = BehaviorModelBuilder::new(SimDuration::from_secs(60))
        .with_state_bounds(2, 4)
        .fit(&trace, &mut rng);

    // At least two states, jointly covering the whole timeline.
    assert!(model.state_count() >= 2);
    let covered: usize = model.states().iter().map(|s| s.periods).sum();
    assert_eq!(covered, model.timeline_states().len());

    // There is a write-heavy state assigned a strong policy and a read-mostly
    // state assigned a weaker one (the generic rules of the paper).
    assert!(model.states().iter().any(|s| s.centroid.write_ratio > 0.3
        && matches!(s.policy, PolicyKind::Quorum | PolicyKind::Strong)));
    assert!(model.states().iter().any(|s| s.centroid.write_ratio < 0.2
        && !matches!(s.policy, PolicyKind::Quorum | PolicyKind::Strong)));

    // The model survives serialization (it ships with the application).
    let back = concord_core::BehaviorModel::from_json(&model.to_json()).unwrap();
    assert_eq!(back, model);
}

#[test]
fn behavior_driven_runs_complete_and_track_states() {
    let mut rng = SimRng::new(77);
    let trace = webshop_trace(&mut rng);
    let model = BehaviorModelBuilder::new(SimDuration::from_secs(60))
        .with_state_bounds(2, 4)
        .fit(&trace, &mut rng);

    let platform = concord::platforms::ec2_harmony(0.4);
    let mut workload = presets::paper_heavy_read_update(2_000, 8_000);
    workload.field_count = 1;
    workload.field_length = 1_000;
    let experiment = Experiment::new(platform, workload)
        .with_clients(16)
        .with_adaptation_interval(SimDuration::from_millis(100))
        .with_seed(77);

    let behavior_report = experiment.run_behavior_policy(BehaviorDrivenPolicy::new(model));
    assert_eq!(behavior_report.total_ops, 8_000);
    assert!(behavior_report.throughput_ops_per_sec > 0.0);
    assert!(behavior_report.adaptation_steps > 2);
    assert!(behavior_report.policy.contains("behavior-model"));

    // The behavior-driven run is sane relative to the static extremes: never
    // slower than strong, never staler than eventual.
    let baselines = experiment.compare(&[PolicySpec::Eventual, PolicySpec::Strong]);
    let eventual = &baselines[0];
    let strong = &baselines[1];
    assert!(behavior_report.throughput_ops_per_sec >= strong.throughput_ops_per_sec * 0.9);
    assert!(behavior_report.stale_read_rate <= eventual.stale_read_rate + 0.02);
}
