//! Platform presets: the deployments used in the paper's evaluation (§IV),
//! expressed as simulated cluster configurations.
//!
//! | Preset | Paper setup |
//! |---|---|
//! | [`ec2_harmony`] | Harmony evaluation on Amazon EC2: 20 VMs, one region |
//! | [`grid5000_harmony`] | Harmony evaluation on Grid'5000: 84 nodes over two clusters |
//! | [`ec2_cost`] | Cost evaluation on EC2: 18 VMs over two availability zones of us-east-1, RF 5 |
//! | [`grid5000_cost`] | Cost evaluation on Grid'5000: 50 nodes over two sites (east / south of France), RF 5 |
//!
//! Every preset accepts a `scale` in `(0, 1]`: 1.0 reproduces the paper's
//! node counts; smaller values shrink the cluster proportionally so the
//! experiment fits in seconds on a laptop while preserving the topology
//! (two datacenters stay two datacenters) and the replication factor.

use concord_cluster::{
    ClusterConfig, ConsistencyLevel, Partitioner, RepairConfig, ReplicaSelection,
    ReplicationStrategy, ResilienceConfig,
};
use concord_cost::PricingModel;
use concord_sim::{DelayDistribution, NetworkModel, RegionId, SimDuration, Topology};

/// A named platform preset: a cluster configuration plus the pricing model
/// that applies to it.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Human-readable name used in reports.
    pub name: String,
    /// The simulated cluster configuration.
    pub cluster: ClusterConfig,
    /// The pricing model used to bill runs on this platform.
    pub pricing: PricingModel,
}

fn scaled_nodes(paper_nodes: usize, scale: f64, min_nodes: usize) -> usize {
    ((paper_nodes as f64 * scale.clamp(0.01, 1.0)).round() as usize).max(min_nodes)
}

fn base_config(topology: Topology, network: NetworkModel, rf: u32) -> ClusterConfig {
    ClusterConfig {
        topology,
        network,
        replication_factor: rf,
        strategy: ReplicationStrategy::NetworkTopology,
        partitioner: Partitioner::Hash,
        vnodes: 16,
        read_level: ConsistencyLevel::One,
        write_level: ConsistencyLevel::One,
        storage_read_latency: DelayDistribution::LogNormal {
            median_ms: 0.35,
            sigma: 0.4,
        },
        storage_write_latency: DelayDistribution::LogNormal {
            median_ms: 0.25,
            sigma: 0.4,
        },
        node_concurrency: 32,
        op_timeout: SimDuration::from_secs(10),
        read_repair: false,
        message_overhead_bytes: 60,
        small_message_bytes: 40,
        retry_on_timeout: 0,
        exact_latency_percentiles: false,
        repair: RepairConfig::off(),
        resilience: ResilienceConfig::off(),
        read_selection: ReplicaSelection::Closest,
        shards: 1,
        eager_folds: false,
    }
}

/// Harmony's EC2 deployment (§IV-A): 20 VMs in one region, replication
/// factor 3, multi-AZ placement.
pub fn ec2_harmony(scale: f64) -> Platform {
    let nodes = scaled_nodes(20, scale, 6);
    let topology = Topology::spread(
        nodes,
        &[("us-east-1a", RegionId(0)), ("us-east-1b", RegionId(0))],
    );
    Platform {
        name: format!("ec2-harmony({nodes} VMs)"),
        cluster: base_config(topology, NetworkModel::ec2_like(), 3),
        pricing: PricingModel::ec2_2013(),
    }
}

/// Harmony's Grid'5000 deployment (§IV-A): 84 nodes over two clusters,
/// replication factor 3.
pub fn grid5000_harmony(scale: f64) -> Platform {
    let nodes = scaled_nodes(84, scale, 6);
    let topology = Topology::spread(nodes, &[("rennes", RegionId(0)), ("sophia", RegionId(0))]);
    Platform {
        name: format!("grid5000-harmony({nodes} nodes)"),
        cluster: base_config(topology, NetworkModel::grid5000_like(), 3),
        pricing: PricingModel::grid5000_accounting(),
    }
}

/// The cost-evaluation EC2 deployment (§IV-B): 18 VMs over two availability
/// zones of us-east-1, replication factor 5.
pub fn ec2_cost(scale: f64) -> Platform {
    let nodes = scaled_nodes(18, scale, 6);
    let topology = Topology::spread(
        nodes,
        &[("us-east-1a", RegionId(0)), ("us-east-1b", RegionId(0))],
    );
    Platform {
        name: format!("ec2-cost({nodes} VMs, 2 AZ, RF5)"),
        cluster: base_config(topology, NetworkModel::ec2_like(), 5),
        pricing: PricingModel::ec2_2013(),
    }
}

/// The cost-evaluation Grid'5000 deployment (§IV-B): 50 nodes over two sites
/// in the east and south of France, replication factor 5.
pub fn grid5000_cost(scale: f64) -> Platform {
    let nodes = scaled_nodes(50, scale, 6);
    let topology = Topology::spread(nodes, &[("nancy", RegionId(0)), ("sophia", RegionId(0))]);
    Platform {
        name: format!("grid5000-cost({nodes} nodes, 2 sites, RF5)"),
        cluster: base_config(topology, NetworkModel::grid5000_like(), 5),
        pricing: PricingModel::grid5000_accounting(),
    }
}

/// A tiny LAN platform for unit tests and the quickstart example.
pub fn laptop() -> Platform {
    Platform {
        name: "laptop(5 nodes)".to_string(),
        cluster: ClusterConfig::lan_test(5, 3),
        pricing: PricingModel::ec2_2013(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_the_paper_node_counts() {
        assert_eq!(ec2_harmony(1.0).cluster.topology.node_count(), 20);
        assert_eq!(grid5000_harmony(1.0).cluster.topology.node_count(), 84);
        assert_eq!(ec2_cost(1.0).cluster.topology.node_count(), 18);
        assert_eq!(grid5000_cost(1.0).cluster.topology.node_count(), 50);
        assert_eq!(ec2_cost(1.0).cluster.replication_factor, 5);
        assert_eq!(grid5000_cost(1.0).cluster.replication_factor, 5);
    }

    #[test]
    fn every_preset_is_valid_at_every_scale() {
        for scale in [1.0, 0.5, 0.25, 0.1, 0.01] {
            for platform in [
                ec2_harmony(scale),
                grid5000_harmony(scale),
                ec2_cost(scale),
                grid5000_cost(scale),
            ] {
                platform
                    .cluster
                    .validate()
                    .unwrap_or_else(|e| panic!("{} at scale {scale}: {e}", platform.name));
                assert_eq!(platform.cluster.dc_count(), 2, "{}", platform.name);
                assert!(platform.pricing.validate().is_ok());
            }
        }
        assert!(laptop().cluster.validate().is_ok());
    }

    #[test]
    fn scaling_preserves_topology_shape() {
        let small = ec2_cost(0.35);
        assert!(small.cluster.topology.node_count() >= 6);
        assert!(small.cluster.topology.node_count() < 18);
        assert_eq!(small.cluster.dc_count(), 2);
        assert_eq!(small.cluster.replication_factor, 5);
    }
}
