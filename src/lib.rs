//! # Concord — self-adaptive, cost-efficient consistency management for
//! geo-replicated cloud storage
//!
//! Concord is a from-scratch Rust reproduction of
//! *"Self-Adaptive Cost-Efficient Consistency Management in the Cloud"*
//! (H.-E. Chihoub, IEEE IPDPS 2013 PhD Forum) and of the systems it builds
//! on: the **Harmony** self-adaptive consistency controller, the **Bismar**
//! cost-efficient controller, and the **application behavior modeling**
//! pipeline — together with every substrate the paper's evaluation needs
//! (a Cassandra-like geo-replicated storage simulator, a YCSB-like workload
//! generator, monitoring, a probabilistic staleness model, and a cloud cost
//! model).
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`sim`] (`concord-sim`) | discrete-event engine, virtual time, RNG, topologies, latency models |
//! | [`cluster`] (`concord-cluster`) | Cassandra-like replicated KV store with tunable consistency |
//! | [`workload`] (`concord-workload`) | YCSB-like workload generation and traces |
//! | [`monitor`] (`concord-monitor`) | rate / latency / propagation monitoring |
//! | [`staleness`] (`concord-staleness`) | probabilistic stale-read estimation (Harmony's model) |
//! | [`cost`] (`concord-cost`) | pricing, bill decomposition, consistency-cost efficiency |
//! | [`core`] (`concord-core`) | Harmony, Bismar, behavior modeling, adaptive runtime |
//! | this crate | platform presets, the [`Experiment`] API and the prelude |
//!
//! ## Quickstart
//!
//! ```
//! use concord::prelude::*;
//!
//! // A scaled-down version of the paper's Grid'5000 cost platform.
//! let platform = concord::platforms::grid5000_cost(0.15);
//! let mut workload = concord_workload::presets::paper_heavy_read_update(1_000, 2_000);
//! workload.field_count = 1;
//! workload.field_length = 512;
//!
//! let experiment = Experiment::new(platform, workload).with_clients(8);
//! let reports = experiment.compare(&[
//!     PolicySpec::Eventual,
//!     PolicySpec::Harmony { tolerance: 0.2 },
//! ]);
//! assert_eq!(reports.len(), 2);
//! println!("{}", concord_core::render_table("quickstart", &reports));
//! ```

#![warn(missing_docs)]

pub mod experiment;
pub mod platforms;

pub use experiment::{Experiment, PolicySpec};
pub use platforms::Platform;

pub use concord_cluster as cluster;
pub use concord_core as core;
pub use concord_cost as cost;
pub use concord_monitor as monitor;
pub use concord_sim as sim;
pub use concord_staleness as staleness;
pub use concord_workload as workload;

/// Convenient glob import for examples and downstream users.
pub mod prelude {
    pub use crate::experiment::{Experiment, PolicySpec};
    pub use crate::platforms::{self, Platform};
    pub use concord_cluster::{
        Cluster, ClusterConfig, ConsistencyLevel, Partitioner, RepairConfig, RepairMode,
        ReplicaSelection, ResilienceConfig,
    };
    pub use concord_core::{
        render_table, AdaptiveRuntime, BehaviorDrivenPolicy, BehaviorModelBuilder, BismarPolicy,
        ConsistencyPolicy, FaultAction, FaultEvent, HarmonyPolicy, RuleSet, RunReport,
        RuntimeConfig, Scenario, StaticPolicy,
    };
    pub use concord_cost::{Bill, PricingModel};
    pub use concord_sim::{SimDuration, SimRng, SimTime};
    pub use concord_workload::{presets, ArrivalProcess, CoreWorkload, WorkloadConfig};
}
