//! High-level experiment API: configure a platform, a workload and one or
//! more consistency policies, run them (in parallel across policies with
//! rayon — a real thread pool since PR 2) and collect comparable
//! [`RunReport`]s.
//!
//! Every run owns its cluster and runtime and derives all randomness from
//! its seed, and the pool recombines results in input order, so
//! [`Experiment::compare`] and [`Experiment::run_seeds`] return
//! byte-identical reports for any thread count (`RAYON_NUM_THREADS`, a
//! `ThreadPool::install` scope, or the machine default).
//!
//! This is the entry point the examples, the integration tests and the
//! benchmark harness all use; `concord-bench`'s `Sweep` builds the full
//! (policy × seed) grid machinery on top of it.

use crate::platforms::Platform;
use concord_cluster::Cluster;
use concord_core::{
    AdaptiveRuntime, BehaviorDrivenPolicy, BismarConfig, BismarPolicy, ConsistencyPolicy,
    HarmonyPolicy, RunReport, RuntimeConfig, Scenario, StaticPolicy,
};
use concord_monitor::MonitorConfig;
use concord_sim::SimDuration;
use concord_workload::{ArrivalProcess, CoreWorkload, WorkloadConfig};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A serializable description of the policy to run (so experiment sweeps can
/// be constructed declaratively and executed in parallel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// Static eventual consistency (ONE/ONE).
    Eventual,
    /// Static strong consistency (read ALL).
    Strong,
    /// Static quorum reads and writes.
    Quorum,
    /// A fixed number of read replicas with writes at ONE
    /// (used by the read-level sweeps; this is the knob Harmony tunes).
    FixedReadReplicas(u32),
    /// The same fixed level for both reads and writes (ONE/ONE, QUORUM/QUORUM,
    /// ALL/ALL, …) — the way the paper's cost experiments sweep Cassandra's
    /// per-operation consistency level.
    SymmetricLevel(u32),
    /// Harmony with the given tolerated stale-read rate.
    Harmony {
        /// Tolerated stale-read rate (fraction).
        tolerance: f64,
    },
    /// Bismar with its default configuration and the platform's pricing.
    Bismar,
}

impl PolicySpec {
    /// Instantiate the live policy for a platform.
    pub fn instantiate(&self, platform: &Platform) -> Box<dyn ConsistencyPolicy> {
        match self {
            PolicySpec::Eventual => Box::new(StaticPolicy::eventual()),
            PolicySpec::Strong => Box::new(StaticPolicy::strong()),
            PolicySpec::Quorum => Box::new(StaticPolicy::quorum()),
            PolicySpec::FixedReadReplicas(n) => Box::new(StaticPolicy::fixed(
                concord_cluster::ConsistencyLevel::from_replica_count(
                    *n,
                    platform.cluster.replication_factor,
                ),
                concord_cluster::ConsistencyLevel::One,
            )),
            PolicySpec::SymmetricLevel(n) => {
                let level = concord_cluster::ConsistencyLevel::from_replica_count(
                    *n,
                    platform.cluster.replication_factor,
                );
                Box::new(StaticPolicy::fixed(level, level))
            }
            PolicySpec::Harmony { tolerance } => {
                Box::new(HarmonyPolicy::with_tolerance(*tolerance))
            }
            PolicySpec::Bismar => Box::new(BismarPolicy::new(BismarConfig {
                pricing: platform.pricing,
                ..Default::default()
            })),
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            PolicySpec::Eventual => "eventual(ONE)".into(),
            PolicySpec::Strong => "strong(ALL)".into(),
            PolicySpec::Quorum => "quorum".into(),
            PolicySpec::FixedReadReplicas(n) => format!("read-level({n})"),
            PolicySpec::SymmetricLevel(n) => format!("level({n}/{n})"),
            PolicySpec::Harmony { tolerance } => format!("harmony({:.0}%)", tolerance * 100.0),
            PolicySpec::Bismar => "bismar".into(),
        }
    }
}

/// An experiment: one platform, one workload, several policies to compare.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// The platform to deploy on.
    pub platform: Platform,
    /// The workload to run (each policy runs the same workload).
    pub workload: WorkloadConfig,
    /// Number of closed-loop clients.
    pub clients: u32,
    /// Adaptation interval for adaptive policies.
    pub adaptation_interval: SimDuration,
    /// RNG seed (the same seed is used for every policy, so runs differ only
    /// in the consistency decisions).
    pub seed: u64,
    /// The scenario every policy runs under (arrival mode + fault script).
    /// `None` means the historical healthy closed loop of `clients` clients;
    /// when set, the scenario's arrival mode wins over `clients`.
    pub scenario: Option<Scenario>,
}

impl Experiment {
    /// Create an experiment with sensible defaults (32 clients, 1 s
    /// adaptation interval, seed 42).
    pub fn new(platform: Platform, workload: WorkloadConfig) -> Self {
        Experiment {
            platform,
            workload,
            clients: 32,
            adaptation_interval: SimDuration::from_secs(1),
            seed: 42,
            scenario: None,
        }
    }

    /// Set the number of closed-loop clients.
    pub fn with_clients(mut self, clients: u32) -> Self {
        self.clients = clients;
        self
    }

    /// Set the adaptation interval.
    pub fn with_adaptation_interval(mut self, interval: SimDuration) -> Self {
        self.adaptation_interval = interval;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the scenario (arrival mode + fault script) every policy runs
    /// under. The scenario's arrival mode takes precedence over
    /// [`Experiment::with_clients`].
    pub fn with_scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Override just the arrival mode, keeping any fault script already
    /// configured (creates a fault-free scenario if none is set).
    pub fn with_arrival(mut self, arrival: ArrivalProcess) -> Self {
        match &mut self.scenario {
            Some(s) => s.arrival = arrival,
            None => {
                self.scenario = Some(Scenario {
                    arrival,
                    faults: Vec::new(),
                })
            }
        }
        self
    }

    /// The scenario this experiment runs: the configured one, or the
    /// historical healthy closed loop of `clients` clients.
    pub fn scenario(&self) -> Scenario {
        self.scenario
            .clone()
            .unwrap_or_else(|| Scenario::closed(self.clients))
    }

    fn runtime_config(&self) -> RuntimeConfig {
        RuntimeConfig {
            clients: self.clients,
            think_time: SimDuration::ZERO,
            adaptation_interval: self.adaptation_interval,
            monitor: MonitorConfig::default(),
            pricing: Some(self.platform.pricing),
            max_outputs: u64::MAX,
        }
    }

    /// Build a loaded cluster ready to serve the experiment's workload.
    pub fn build_cluster(&self) -> Cluster {
        let mut cluster = Cluster::new(self.platform.cluster.clone(), self.seed);
        let record_size = self.workload.record_size();
        cluster.load_records((0..self.workload.record_count).map(move |k| (k, record_size)));
        cluster
    }

    /// Run a single policy under the experiment's scenario and return its
    /// report. Every entry point funnels through here, so closed-loop,
    /// open-loop and fault-script runs all share one driver
    /// ([`AdaptiveRuntime::run_scenario`]).
    pub fn run_policy(&self, policy: &mut dyn ConsistencyPolicy) -> RunReport {
        let mut cluster = self.build_cluster();
        let mut workload = CoreWorkload::new(self.workload.clone());
        let mut runtime = AdaptiveRuntime::new(self.runtime_config(), self.seed);
        runtime.run_scenario(&mut cluster, &mut workload, policy, &self.scenario())
    }

    /// Run a behavior-model-driven policy (kept separate because the model is
    /// not expressible as a [`PolicySpec`]).
    pub fn run_behavior_policy(&self, mut policy: BehaviorDrivenPolicy) -> RunReport {
        self.run_policy(&mut policy)
    }

    /// Run one policy specification.
    pub fn run_spec(&self, spec: &PolicySpec) -> RunReport {
        let mut policy = spec.instantiate(&self.platform);
        let mut report = self.run_policy(policy.as_mut());
        report.policy = spec.label();
        report
    }

    /// Run a set of policy specifications **in parallel** (one pool task per
    /// policy; each run owns its cluster, so there is no shared mutable
    /// state) and return the reports in the same order — byte-identical for
    /// any thread count.
    pub fn compare(&self, specs: &[PolicySpec]) -> Vec<RunReport> {
        specs.par_iter().map(|spec| self.run_spec(spec)).collect()
    }

    /// Run the same specification with several seeds in parallel and return
    /// one report per seed (used for variance / confidence analysis).
    pub fn run_seeds(&self, spec: &PolicySpec, seeds: &[u64]) -> Vec<RunReport> {
        seeds
            .par_iter()
            .map(|&seed| {
                let mut exp = self.clone();
                exp.seed = seed;
                exp.run_spec(spec)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms;
    use concord_workload::presets;

    fn small_experiment() -> Experiment {
        let platform = platforms::grid5000_cost(0.15); // ~8 nodes, 2 sites, RF5
        let mut workload = presets::paper_heavy_read_update(1_500, 4_000);
        workload.field_count = 1;
        workload.field_length = 512;
        Experiment::new(platform, workload)
            .with_clients(16)
            .with_adaptation_interval(SimDuration::from_millis(200))
            .with_seed(7)
    }

    #[test]
    fn policy_specs_have_labels_and_instantiate() {
        let platform = platforms::laptop();
        for spec in [
            PolicySpec::Eventual,
            PolicySpec::Strong,
            PolicySpec::Quorum,
            PolicySpec::FixedReadReplicas(2),
            PolicySpec::SymmetricLevel(3),
            PolicySpec::Harmony { tolerance: 0.2 },
            PolicySpec::Bismar,
        ] {
            assert!(!spec.label().is_empty());
            let policy = spec.instantiate(&platform);
            assert!(!policy.name().is_empty());
        }
    }

    #[test]
    fn compare_runs_all_policies_on_the_same_workload() {
        let exp = small_experiment();
        let reports = exp.compare(&[
            PolicySpec::Eventual,
            PolicySpec::Strong,
            PolicySpec::Harmony { tolerance: 0.3 },
        ]);
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert_eq!(r.total_ops, 4_000, "{}", r.policy);
            assert!(r.throughput_ops_per_sec > 0.0);
            assert!(r.bill.is_some());
        }
        // Order matches the spec order and labels are applied.
        assert_eq!(reports[0].policy, "eventual(ONE)");
        assert_eq!(reports[1].policy, "strong(ALL)");
        assert!(reports[2].policy.starts_with("harmony"));
        // The headline shape: eventual is fastest and stalest.
        assert!(reports[0].throughput_ops_per_sec >= reports[1].throughput_ops_per_sec);
        assert!(reports[0].stale_read_rate >= reports[1].stale_read_rate);
    }

    #[test]
    fn identical_seeds_give_identical_reports() {
        let exp = small_experiment();
        let a = exp.run_spec(&PolicySpec::Quorum);
        let b = exp.run_spec(&PolicySpec::Quorum);
        assert_eq!(a, b);
    }

    #[test]
    fn run_seeds_produces_one_report_per_seed() {
        let exp = small_experiment();
        let reports = exp.run_seeds(&PolicySpec::Eventual, &[1, 2, 3]);
        assert_eq!(reports.len(), 3);
        // Different seeds shuffle the workload, so throughputs differ a bit
        // but not wildly.
        let thr: Vec<f64> = reports.iter().map(|r| r.throughput_ops_per_sec).collect();
        assert!(thr.iter().all(|t| *t > 0.0));
    }
}
