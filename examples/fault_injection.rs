//! Worked example of the **scenario driver**: run adaptive and static
//! consistency policies through a scripted multi-region outage under a fixed
//! open-loop offered load, with the repair plane off and then fully on.
//!
//! The scenario replays the evaluation shape the adaptive policies are
//! designed for — the cost/staleness trade-off under *offered load* and
//! *replica divergence under stress*:
//!
//! 1. node 1 crashes at 15% of the run (its ring tokens are withdrawn, the
//!    survivors take over its ranges) and recovers at 40%;
//! 2. node 2 goes down transiently at 25% — it keeps its ring tokens, so
//!    writes keep fanning out to it and (with repair on) get queued as
//!    hints — and comes back at 35%;
//! 3. the platform's two sites partition at 50% (cross-site messages are
//!    lost in transit) and heal at 70%;
//! 4. the inter-site link degrades 8× at 80% (a WAN brown-out) and is
//!    restored at 95%.
//!
//! Because arrivals are open-loop (a pre-sorted Poisson schedule bulk-loaded
//! through the event queue's O(1) bulk lane), the offered load does **not**
//! back off while the cluster degrades — timeouts, retries and staleness
//! show up in the report instead of silently stretching the makespan.
//!
//! The same grid runs twice: once with `RepairMode::Off` (divergence from
//! the outage lingers until ordinary writes overwrite it) and once with
//! `RepairMode::Full` (hinted handoff + anti-entropy + recovery migration
//! actively re-converge the replicas). The comparison prints what repair
//! buys — fewer stale reads after the outage — and what it costs — the
//! repair bytes show up in the bill's network line.
//!
//! A second, **gray-failure** scenario follows: one node serves 10× slow
//! mid-run while answering normally — no crash, nothing for fault detection
//! to see. The run repeats with hedged reads (after 2 ms the coordinator
//! duplicates the read to the next-best replica, first response wins) and
//! then with the full resilience layer (hedging + health-aware dynamic
//! replica selection + retry backoff), printing what hedging buys — the
//! read tail — and what it costs — the hedge duplicates' bytes, metered
//! and priced like any other traffic.
//!
//! Run with:
//! ```text
//! cargo run --release --example fault_injection
//! ```

use concord::prelude::*;
use concord::sim::LinkClass;
use concord::PolicySpec;

fn faulted_experiment(repair: RepairMode) -> Experiment {
    // A scaled-down two-site Grid'5000-like platform. Timed-out operations
    // get one retry so the report separates "slow" from "gave up".
    let mut platform = concord::platforms::grid5000_harmony(0.15);
    platform.cluster.op_timeout = SimDuration::from_secs(1);
    platform.cluster.retry_on_timeout = 1;
    platform.cluster.repair = RepairConfig::with_mode(repair);

    let mut workload = presets::paper_heavy_read_update(2_000, 20_000);
    workload.field_count = 1;
    workload.field_length = 1_000;

    // 20k operations at 2k ops/s offered load: the run spans ~10 s of
    // simulated time, and the fault script hits fixed fractions of it.
    let scenario = Scenario::open_poisson(2_000.0).with_faults(vec![
        FaultEvent::at_secs(1.5, FaultAction::CrashNode(1)),
        FaultEvent::at_secs(2.5, FaultAction::NodeDown(2)),
        FaultEvent::at_secs(3.5, FaultAction::NodeUp(2)),
        FaultEvent::at_secs(4.0, FaultAction::RecoverNode(1)),
        FaultEvent::at_secs(5.0, FaultAction::PartitionDcs(0, 1)),
        FaultEvent::at_secs(7.0, FaultAction::HealDcs(0, 1)),
        FaultEvent::at_secs(8.0, FaultAction::DegradeLink(LinkClass::InterDc, 8.0)),
        FaultEvent::at_secs(9.5, FaultAction::RestoreLink(LinkClass::InterDc)),
    ]);

    Experiment::new(platform, workload)
        .with_adaptation_interval(SimDuration::from_millis(200))
        .with_seed(7)
        .with_scenario(scenario)
}

fn main() {
    let policies = [
        PolicySpec::Eventual,
        PolicySpec::Quorum,
        PolicySpec::Harmony { tolerance: 0.2 },
    ];

    let off = faulted_experiment(RepairMode::Off);
    println!("scenario: {}", off.scenario().label());
    let off_reports = off.compare(&policies);
    println!(
        "{}",
        render_table("repair off: policies under faults", &off_reports)
    );

    let full = faulted_experiment(RepairMode::Full);
    let full_reports = full.compare(&policies);
    println!(
        "{}",
        render_table("repair full: same grid, repair plane on", &full_reports)
    );

    // What repair buys (fewer stale reads) and what it costs (repair bytes
    // the bill prices as ordinary network traffic).
    println!(
        "{:<28} {:>11} {:>12} {:>8} {:>10} {:>10} {:>11}",
        "policy", "stale off", "stale full", "hints", "recs-strm", "repair-KB", "bill delta"
    );
    for (o, f) in off_reports.iter().zip(&full_reports) {
        let delta = f.total_cost_usd() - o.total_cost_usd();
        println!(
            "{:<28} {:>11} {:>12} {:>8} {:>10} {:>10.1} {:>+11.4}",
            o.policy,
            o.stale_reads,
            f.stale_reads,
            f.hints_queued,
            f.repair_records_streamed,
            f.repair_traffic.total() as f64 / 1024.0,
            delta,
        );
        // Repair-off reports never show repair activity; repair-on ones do.
        assert_eq!(o.repair_traffic.total(), 0);
        assert!(f.hints_queued > 0 && f.repair_records_streamed > 0);
    }
    println!(
        "\n{:<28} {:>9} {:>8} {:>10} {:>7}",
        "policy (repair full)", "timeouts", "retries", "msgs-lost", "faults"
    );
    for r in &full_reports {
        println!(
            "{:<28} {:>9} {:>8} {:>10} {:>7}",
            r.policy, r.timeouts, r.retries, r.messages_lost, r.faults_injected
        );
    }

    // Fixed seed ⇒ the faulted run is exactly reproducible, repair and all.
    let again = full.run_spec(&PolicySpec::Quorum);
    assert_eq!(again, full_reports[1], "fault scenarios are deterministic");
    println!("\nre-running the quorum point reproduced the report exactly.");

    // --- Gray failure: what hedging buys, and for how much -------------
    // Node 3 serves 10x slow from 30% to 70% of the run but keeps
    // answering, so no fault detector fires — only the read tail shows it.
    let gray_run = |hedge: bool, dynamic: bool| {
        let mut platform = concord::platforms::grid5000_harmony(0.15);
        platform.cluster.op_timeout = SimDuration::from_secs(1);
        platform.cluster.retry_on_timeout = 1;
        if hedge {
            platform.cluster.resilience.hedge_delay = SimDuration::from_millis(2);
        }
        if dynamic {
            platform.cluster.resilience.backoff = true;
            platform.cluster.read_selection = ReplicaSelection::Dynamic;
        }
        let mut workload = presets::paper_heavy_read_update(2_000, 20_000);
        workload.field_count = 1;
        workload.field_length = 1_000;
        let scenario = Scenario::open_poisson(2_000.0).with_faults(vec![
            FaultEvent::at_secs(3.0, FaultAction::SlowNode(3, 10.0)),
            FaultEvent::at_secs(7.0, FaultAction::RestoreNode(3)),
        ]);
        Experiment::new(platform, workload)
            .with_adaptation_interval(SimDuration::from_millis(200))
            .with_seed(7)
            .with_scenario(scenario)
            .run_spec(&PolicySpec::Eventual)
    };
    let plain = gray_run(false, false);
    let hedged = gray_run(true, false);
    let resilient = gray_run(true, true);
    println!("\ngray failure: node 3 serves 10x slow mid-run (no crash, nothing to detect)");
    println!(
        "{:<26} {:>12} {:>12} {:>8} {:>11} {:>10} {:>11}",
        "resilience", "r-p50 (ms)", "r-p99 (ms)", "hedged", "hedge-wins", "hedge-KB", "bill delta"
    );
    for (label, r) in [
        ("off", &plain),
        ("hedged reads (2 ms)", &hedged),
        ("hedged+dynamic+backoff", &resilient),
    ] {
        println!(
            "{:<26} {:>12.3} {:>12.3} {:>8} {:>11} {:>10.1} {:>+11.4}",
            label,
            r.read_latency_ms.p50,
            r.read_latency_ms.p99,
            r.hedged_requests,
            r.hedge_wins,
            r.hedge_bytes as f64 / 1024.0,
            r.total_cost_usd() - plain.total_cost_usd(),
        );
    }
    // Hedging rescues the reads stuck behind the gray node...
    assert!(hedged.hedged_requests > 0 && hedged.hedge_wins > 0);
    assert!(hedged.read_latency_ms.p99 < plain.read_latency_ms.p99 * 0.9);
    assert!(resilient.read_latency_ms.p99 < plain.read_latency_ms.p99 * 0.9);
    // ...and every speculative byte it spends is metered and billed.
    assert!(hedged.hedge_bytes > 0);
    assert!(hedged.hedge_bytes <= hedged.usage.traffic.total());
    println!(
        "\nhedging cut the read p99 from {:.3} ms to {:.3} ms for {:.1} KB of hedge traffic",
        plain.read_latency_ms.p99,
        hedged.read_latency_ms.p99,
        hedged.hedge_bytes as f64 / 1024.0,
    );
}
