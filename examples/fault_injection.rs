//! Worked example of the **scenario driver**: run adaptive and static
//! consistency policies through a scripted multi-region outage under a fixed
//! open-loop offered load.
//!
//! The scenario replays the evaluation shape the adaptive policies are
//! designed for — the cost/staleness trade-off under *offered load* and
//! *replica divergence under stress*:
//!
//! 1. node 1 crashes at 15% of the run (its ring tokens are withdrawn, the
//!    survivors take over its ranges) and recovers at 40%;
//! 2. the platform's two sites partition at 50% (cross-site messages are
//!    lost in transit) and heal at 70%;
//! 3. the inter-site link degrades 8× at 80% (a WAN brown-out) and is
//!    restored at 95%.
//!
//! Because arrivals are open-loop (a pre-sorted Poisson schedule bulk-loaded
//! through the event queue's O(1) bulk lane), the offered load does **not**
//! back off while the cluster degrades — timeouts, retries and staleness
//! show up in the report instead of silently stretching the makespan.
//!
//! Run with:
//! ```text
//! cargo run --release --example fault_injection
//! ```

use concord::prelude::*;
use concord::sim::LinkClass;
use concord::PolicySpec;

fn main() {
    // A scaled-down two-site Grid'5000-like platform. Timed-out operations
    // get one retry so the report separates "slow" from "gave up".
    let mut platform = concord::platforms::grid5000_harmony(0.15);
    platform.cluster.op_timeout = SimDuration::from_secs(1);
    platform.cluster.retry_on_timeout = 1;

    let mut workload = presets::paper_heavy_read_update(2_000, 20_000);
    workload.field_count = 1;
    workload.field_length = 1_000;

    // 20k operations at 2k ops/s offered load: the run spans ~10 s of
    // simulated time, and the fault script hits fixed fractions of it.
    let scenario = Scenario::open_poisson(2_000.0).with_faults(vec![
        FaultEvent::at_secs(1.5, FaultAction::CrashNode(1)),
        FaultEvent::at_secs(4.0, FaultAction::RecoverNode(1)),
        FaultEvent::at_secs(5.0, FaultAction::PartitionDcs(0, 1)),
        FaultEvent::at_secs(7.0, FaultAction::HealDcs(0, 1)),
        FaultEvent::at_secs(8.0, FaultAction::DegradeLink(LinkClass::InterDc, 8.0)),
        FaultEvent::at_secs(9.5, FaultAction::RestoreLink(LinkClass::InterDc)),
    ]);
    println!("scenario: {}", scenario.label());

    let experiment = Experiment::new(platform, workload)
        .with_adaptation_interval(SimDuration::from_millis(200))
        .with_seed(7)
        .with_scenario(scenario);

    let reports = experiment.compare(&[
        PolicySpec::Eventual,
        PolicySpec::Quorum,
        PolicySpec::Harmony { tolerance: 0.2 },
    ]);
    println!(
        "{}",
        render_table("adaptive policies under faults", &reports)
    );
    println!(
        "{:<28} {:>9} {:>8} {:>10} {:>7}",
        "policy", "timeouts", "retries", "msgs-lost", "faults"
    );
    for r in &reports {
        println!(
            "{:<28} {:>9} {:>8} {:>10} {:>7}",
            r.policy, r.timeouts, r.retries, r.messages_lost, r.faults_injected
        );
    }

    // Fixed seed ⇒ the faulted run is exactly reproducible.
    let again = experiment.run_spec(&PolicySpec::Quorum);
    assert_eq!(again, reports[1], "fault scenarios are deterministic");
    println!("\nre-running the quorum point reproduced the report exactly.");
}
