//! Cost-aware consistency (the Bismar side of the paper): sweep the static
//! consistency levels on an EC2-like two-availability-zone deployment,
//! decompose each bill into instances / storage / network, compute the
//! consistency-cost efficiency of every level, and compare against the
//! Bismar controller.
//!
//! Run with:
//! ```text
//! cargo run --release --example cost_aware_deployment
//! ```

use concord::prelude::*;
use concord_cost::consistency_cost_efficiency;

fn main() {
    // §IV-B setup scaled down: 2 AZs, RF 5.
    let platform = concord::platforms::ec2_cost(0.5);
    println!("platform: {}", platform.name);

    let mut workload = presets::cost_workload(0.002); // ~20k ops, 50k records
    workload.field_count = 1;
    workload.field_length = 1_000;

    let experiment = Experiment::new(platform.clone(), workload)
        .with_clients(32)
        .with_seed(2013);

    // Per-level sweep ONE → ALL plus Bismar, run in parallel.
    let rf = platform.cluster.replication_factor;
    let mut specs: Vec<PolicySpec> = (1..=rf).map(PolicySpec::FixedReadReplicas).collect();
    specs.push(PolicySpec::Bismar);
    let reports = experiment.compare(&specs);

    println!(
        "{}",
        render_table("per-level cost sweep (EC2, 2 AZ, RF 5)", &reports)
    );

    // Bill decomposition per level (the paper's three-part bill).
    println!("\n== bill decomposition ==");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12}",
        "policy", "instances $", "storage $", "network $", "total $"
    );
    for report in &reports {
        if let Some(bill) = report.bill {
            println!(
                "{:<16} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
                report.policy,
                bill.instances_usd,
                bill.storage_usd,
                bill.network_usd,
                bill.total()
            );
        }
    }

    // Consistency-cost efficiency relative to the strongest level.
    let reference_cost = reports[(rf - 1) as usize].total_cost_usd();
    println!("\n== consistency-cost efficiency (reference: read ALL) ==");
    println!(
        "{:<16} {:>10} {:>12} {:>12}",
        "policy", "stale %", "rel. cost", "efficiency"
    );
    for report in &reports {
        let sample = consistency_cost_efficiency(
            report.stale_read_rate,
            report.total_cost_usd(),
            reference_cost,
        );
        println!(
            "{:<16} {:>10.2} {:>12.3} {:>12.3}",
            report.policy,
            report.stale_read_rate * 100.0,
            report.total_cost_usd() / reference_cost,
            sample.efficiency
        );
    }

    let bismar = reports.last().unwrap();
    let quorum = &reports[2]; // read-level(3) == QUORUM for RF 5
    println!(
        "\nBismar cost vs static QUORUM: {:+.1}% (stale reads: {:.2}%)",
        (bismar.total_cost_usd() / quorum.total_cost_usd() - 1.0) * 100.0,
        bismar.stale_read_rate * 100.0
    );
}
