//! Failure injection on a geo-replicated deployment: take a replica node
//! down in the middle of a run and watch how the different consistency
//! levels react (ALL times out, QUORUM and ONE keep serving), using the
//! lower-level cluster API directly.
//!
//! Run with:
//! ```text
//! cargo run --release --example geo_failover
//! ```

use concord::prelude::*;
use concord_cluster::{ClusterOutput, OpStatus};

/// Drive `ops` alternating write/read operations against a fresh cluster at
/// the given read level, taking one replica of the hot key down halfway
/// through, and report (completed, timeouts, stale reads).
fn run_with_failure(read_level: ConsistencyLevel, ops: u64) -> (u64, u64, u64) {
    let platform = concord::platforms::grid5000_cost(0.2);
    let mut cluster = Cluster::new(platform.cluster.clone(), 99);
    cluster.load_records((0..100u64).map(|k| (k, 1_000)));
    cluster.set_levels(read_level, ConsistencyLevel::One);

    // Alternate writes and reads over a small hot set.
    let mut at = SimTime::ZERO;
    for i in 0..ops {
        at += SimDuration::from_micros(400);
        if i % 2 == 0 {
            cluster.submit_write_at((i / 2) % 10, 1_000, at);
        } else {
            cluster.submit_read_at((i / 2) % 10, at);
        }
        if i == ops / 2 {
            // Fail one replica of key 0 mid-run.
            let victim = cluster.replicas_of(0)[1];
            cluster.set_node_down(victim);
        }
    }

    let mut completed = 0u64;
    let mut timeouts = 0u64;
    let mut stale = 0u64;
    while let Some(output) = cluster.advance() {
        if let ClusterOutput::Completed(op) = output {
            completed += 1;
            if op.status == OpStatus::Timeout {
                timeouts += 1;
            }
            if op.stale {
                stale += 1;
            }
        }
    }
    (completed, timeouts, stale)
}

fn main() {
    println!(
        "{:<12} {:>10} {:>10} {:>12}",
        "read level", "completed", "timeouts", "stale reads"
    );
    for level in [
        ConsistencyLevel::One,
        ConsistencyLevel::Quorum,
        ConsistencyLevel::All,
    ] {
        let (completed, timeouts, stale) = run_with_failure(level, 4_000);
        println!(
            "{:<12} {:>10} {:>10} {:>12}",
            level.to_string(),
            completed,
            timeouts,
            stale
        );
    }
    println!(
        "\nWith a replica down, ALL can no longer assemble every response and times out;\n\
         QUORUM keeps serving consistently; ONE keeps serving but returns more stale data.\n\
         This is the availability-consistency trade-off that motivates adaptive tuning."
    );
}
