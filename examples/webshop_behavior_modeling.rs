//! Application behavior modeling (§III-C): learn a webshop's consistency
//! requirements from a synthetic access trace, inspect the discovered
//! states and their assigned policies, then drive a live run with the
//! behavior-model policy and compare it to one-size-fits-all baselines.
//!
//! Run with:
//! ```text
//! cargo run --release --example webshop_behavior_modeling
//! ```

use concord::prelude::*;
use concord_core::behavior::PolicyKind;
use concord_core::{PolicyRule, RuleCondition};
use concord_workload::SyntheticTraceBuilder;

fn main() {
    let mut rng = SimRng::new(7);

    // --- Offline: build the application timeline from past traces ---------
    // A webshop alternates between long browsing phases (read-mostly, light)
    // and short checkout / flash-sale phases (write-heavy, busy).
    let browse = presets::ycsb_b(); // 95% reads
    let checkout = presets::ycsb_a(); // 50% updates
    let trace = SyntheticTraceBuilder::new()
        .add(
            "browse-morning",
            SimDuration::from_secs(600),
            80.0,
            browse.clone(),
        )
        .add(
            "checkout-noon",
            SimDuration::from_secs(180),
            500.0,
            checkout.clone(),
        )
        .add(
            "browse-afternoon",
            SimDuration::from_secs(600),
            70.0,
            browse.clone(),
        )
        .add("flash-sale", SimDuration::from_secs(240), 900.0, checkout)
        .add("browse-evening", SimDuration::from_secs(600), 60.0, browse)
        .build(&mut rng);
    println!(
        "captured trace: {} operations over {:.0} simulated seconds",
        trace.len(),
        trace.duration().as_secs_f64()
    );

    // Generic rules + one administrator rule: flash-sale-sized load must
    // never serve stale product stock, whatever the generic rules say.
    let rules = RuleSet::generic().with_custom_rule(PolicyRule {
        name: "admin: very busy states read at quorum".into(),
        condition: RuleCondition {
            min_ops_per_sec: Some(800.0),
            ..Default::default()
        },
        policy: PolicyKind::Quorum,
    });

    let model = BehaviorModelBuilder::new(SimDuration::from_secs(60))
        .with_state_bounds(2, 5)
        .with_rules(rules)
        .fit(&trace, &mut rng);

    println!("\n== discovered application states ==");
    for state in model.states() {
        println!(
            "state {}: {:>7.1} ops/s, write ratio {:>5.1}%, {} periods → {} ({})",
            state.id,
            state.centroid.ops_per_sec,
            state.centroid.write_ratio * 100.0,
            state.periods,
            state.policy.label(),
            state.assigned_by
        );
    }
    println!("timeline state sequence: {:?}", model.timeline_states());

    // --- Runtime: drive a live workload with the learned model ------------
    let platform = concord::platforms::ec2_harmony(0.4);
    let mut workload = presets::paper_heavy_read_update(4_000, 15_000);
    workload.field_count = 1;
    workload.field_length = 1_000;
    let experiment = Experiment::new(platform, workload)
        .with_clients(24)
        .with_adaptation_interval(SimDuration::from_millis(500))
        .with_seed(7);

    let behavior_report = experiment.run_behavior_policy(BehaviorDrivenPolicy::new(model.clone()));
    let mut baseline_reports = experiment.compare(&[PolicySpec::Eventual, PolicySpec::Strong]);
    baseline_reports.push(behavior_report);

    println!(
        "{}",
        render_table(
            "webshop: behavior model vs static baselines",
            &baseline_reports
        )
    );

    // The model is serializable so it can be shipped with the application.
    let json = model.to_json();
    println!("serialized model: {} bytes of JSON", json.len());
}
