//! Quickstart: compare static consistency baselines against Harmony on a
//! scaled-down version of the paper's Grid'5000 platform.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use concord::prelude::*;

fn main() {
    // A two-site Grid'5000-like cluster at ~15% of the paper's node count so
    // the example finishes in a few seconds.
    let platform = concord::platforms::grid5000_cost(0.15);
    println!("platform: {}", platform.name);

    // The paper's heavy read-update workload (YCSB-A-style 50/50 mix),
    // scaled down to 60k operations over 5k records.
    let mut workload = presets::paper_heavy_read_update(5_000, 60_000);
    workload.field_count = 1;
    workload.field_length = 1_000; // 1 KB records, like YCSB's default

    let experiment = Experiment::new(platform, workload)
        .with_clients(32)
        .with_adaptation_interval(SimDuration::from_millis(100))
        .with_seed(42);

    // Static eventual, static strong, quorum, and Harmony at two tolerances —
    // the comparison of the paper's §IV-A, all runs executed in parallel.
    let reports = experiment.compare(&[
        PolicySpec::Eventual,
        PolicySpec::Strong,
        PolicySpec::Quorum,
        PolicySpec::Harmony { tolerance: 0.40 },
        PolicySpec::Harmony { tolerance: 0.05 },
    ]);

    println!(
        "{}",
        render_table("quickstart: heavy read-update workload", &reports)
    );

    // A few derived observations, in the spirit of the paper's claims.
    let eventual = &reports[0];
    let strong = &reports[1];
    let harmony40 = &reports[3];
    println!(
        "Harmony(40%) throughput vs strong consistency: {:+.1}%",
        (harmony40.throughput_ops_per_sec / strong.throughput_ops_per_sec - 1.0) * 100.0
    );
    println!(
        "Harmony(40%) stale reads vs eventual consistency: {:.1}% vs {:.1}%",
        harmony40.stale_read_rate * 100.0,
        eventual.stale_read_rate * 100.0
    );
    println!(
        "Harmony adapted the read level {} times over {:.1} simulated seconds",
        harmony40.level_timeline.len(),
        harmony40.makespan.as_secs_f64()
    );
}
